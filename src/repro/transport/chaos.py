"""Fault timelines for the live TCP cluster (and the simulator).

One timeline spec drives both backends.  The grammar is a ``;``-separated
list of events, each ``action[:body]@time`` with times in seconds
relative to the start of the measurement window:

``crash:1@5``
    SIGKILL replica 1 at t=5 (simulator: crash-stop).
``recover:1@10``
    Restart replica 1 at t=10 (simulator: un-crash).
``delay:2x0.05@3``
    From t=3, add 50 ms to every frame leaving replica 2.
``drop:2x0.3@3``
    From t=3, drop 30 % of frames leaving replica 2 (live only — the
    simulator's :class:`~repro.sim.faults.FaultInjector` has no
    probabilistic loss).
``partition:0,1|2,3@4``
    Sever {0,1} from {2,3} in both directions at t=4.
``heal@8``
    Clear every delay/drop/partition at t=8.

:func:`apply_timeline` feeds parsed events to anything exposing the
simulator injector's method surface (``crash``, ``recover``,
``delay_egress``, ``partition``, ``heal`` …): pass
``system.faults`` for a simulation or a :class:`LiveFaultInjector` for a
real cluster, and the identical spec produces the analogous fault
schedule — the basis of the sim-vs-live parity tests.

The live side implements transport shaping via :class:`LinkFault`
control messages (applied to :meth:`TcpTransport.set_link_fault` inside
each replica process) and process faults via SIGKILL/respawn in the
cluster parent.  :class:`LiveMonitorFeed` adapts periodic replica state
snapshots into the ``system`` shape
:class:`~repro.adversary.monitor.InvariantMonitor` samples, so the same
five safety invariants verified under simulated attacks run against the
real cluster during chaos.
"""

from __future__ import annotations

import asyncio
from typing import (
    Any,
    Awaitable,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.persistence import state_fingerprint
from ..core.xlog import ExclusiveLog

__all__ = [
    "FaultEvent",
    "LinkFault",
    "LiveFaultInjector",
    "LiveMonitorFeed",
    "StateSnapshotReply",
    "StateSnapshotRequest",
    "apply_link_fault",
    "apply_timeline",
    "parse_timeline",
    "replica_state_view",
]


class FaultEvent:
    """One parsed timeline event."""

    __slots__ = ("at", "action", "args")

    def __init__(self, at: float, action: str, args: Tuple[Any, ...]) -> None:
        self.at = at
        self.action = action
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultEvent {self.action}{self.args}@{self.at}>"

    def __eq__(self, other: Any) -> bool:
        return (
            isinstance(other, FaultEvent)
            and (self.at, self.action, self.args)
            == (other.at, other.action, other.args)
        )


def parse_timeline(spec: str) -> List[FaultEvent]:
    """Parse a timeline spec (see module docstring) into sorted events."""
    events: List[FaultEvent] = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        head, sep, when = chunk.rpartition("@")
        if not sep:
            raise ValueError(f"timeline event {chunk!r} is missing '@time'")
        at = float(when)
        action, _, body = head.partition(":")
        action = action.strip()
        if action in ("crash", "recover"):
            events.append(FaultEvent(at, action, (int(body),)))
        elif action in ("delay", "drop"):
            node_text, sep, value_text = body.partition("x")
            if not sep:
                raise ValueError(
                    f"{action} event needs 'node x value', got {body!r}"
                )
            events.append(
                FaultEvent(at, action, (int(node_text), float(value_text)))
            )
        elif action == "partition":
            side_a, sep, side_b = body.partition("|")
            if not sep:
                raise ValueError(
                    f"partition event needs 'a,b|c,d', got {body!r}"
                )
            group_a = tuple(int(n) for n in side_a.split(",") if n.strip())
            group_b = tuple(int(n) for n in side_b.split(",") if n.strip())
            events.append(FaultEvent(at, action, (group_a, group_b)))
        elif action == "heal":
            events.append(FaultEvent(at, "heal", ()))
        else:
            raise ValueError(f"unknown timeline action {action!r}")
    events.sort(key=lambda event: event.at)
    return events


#: Timeline action → injector method name (sim and live share it).
_ACTION_METHODS = {
    "crash": "crash",
    "recover": "recover",
    "delay": "delay_egress",
    "drop": "drop_egress",
    "partition": "partition",
    "heal": "heal",
}


def apply_timeline(injector: Any, events: Sequence[FaultEvent]) -> None:
    """Schedule ``events`` on any injector with the FaultInjector API."""
    for event in events:
        method = getattr(injector, _ACTION_METHODS[event.action], None)
        if method is None:
            raise ValueError(
                f"injector {injector!r} does not support {event.action!r}"
            )
        method(*event.args, at=event.at)


# ----------------------------------------------------------------------
# Control-channel messages (parent ↔ replica processes)
# ----------------------------------------------------------------------
class LinkFault:
    """Egress shaping order for one replica process.

    ``targets`` is a tuple of destination node ids, or ``None`` for all
    known peers; ``clear`` removes shaping instead of installing it.
    """

    __slots__ = ("targets", "block", "drop", "delay", "clear")

    def __init__(
        self,
        targets: Optional[Tuple[int, ...]],
        block: bool = False,
        drop: float = 0.0,
        delay: float = 0.0,
        clear: bool = False,
    ) -> None:
        self.targets = targets
        self.block = block
        self.drop = drop
        self.delay = delay
        self.clear = clear

    def __reduce__(self):
        return (
            LinkFault,
            (self.targets, self.block, self.drop, self.delay, self.clear),
        )


def apply_link_fault(transport: Any, fault: LinkFault) -> None:
    """Install or clear a :class:`LinkFault` on a ``TcpTransport``."""
    if fault.clear:
        if fault.targets is None:
            transport.clear_link_faults()
        else:
            for dst in fault.targets:
                transport.clear_link_fault(dst)
        return
    targets = (
        fault.targets
        if fault.targets is not None
        else tuple(transport._peers.keys())
    )
    for dst in targets:
        if dst == transport.node_id:
            continue
        transport.set_link_fault(
            dst, block=fault.block, drop=fault.drop, delay=fault.delay
        )


class StateSnapshotRequest:
    """Parent asks a replica process for its current state view."""

    __slots__ = ("tag",)

    def __init__(self, tag: int) -> None:
        self.tag = tag

    def __reduce__(self):
        return (StateSnapshotRequest, (self.tag,))


class StateSnapshotReply:
    __slots__ = ("tag", "node_id", "view")

    def __init__(self, tag: int, node_id: int, view: Dict[str, Any]) -> None:
        self.tag = tag
        self.node_id = node_id
        self.view = view

    def __reduce__(self):
        return (StateSnapshotReply, (self.tag, self.node_id, self.view))


def replica_state_view(replica: Any) -> Dict[str, Any]:
    """Picklable capture of the state the invariant monitor samples."""
    state = replica.state
    view: Dict[str, Any] = {
        "balances": dict(state.balances),
        "seqnums": dict(state.seqnums),
        "xlogs": {
            owner: tuple(log._entries) for owner, log in state.xlogs.items()
        },
        "settled": sum(state.seqnums.values()),
        "fingerprint": state_fingerprint(state),
    }
    used_deps = getattr(replica, "_used_deps", None)
    if used_deps is not None:
        view["used_deps"] = {c: set(s) for c, s in used_deps.items()}
    return view


# ----------------------------------------------------------------------
# Live fault injector (mirrors repro.sim.faults.FaultInjector)
# ----------------------------------------------------------------------
FaultFn = Callable[..., Union[None, Awaitable[None]]]


class LiveFaultInjector:
    """Executes a fault schedule against real replica processes.

    Same method surface as the simulator's
    :class:`~repro.sim.faults.FaultInjector` (so :func:`apply_timeline`
    drives either), but times are relative to the ``t0`` passed to
    :meth:`run` and execution is an asyncio task in the cluster parent.

    ``crash_fn(node_id)`` / ``recover_fn(node_id)`` act on processes
    (SIGKILL / respawn) and may be coroutines; ``link_fn(node_id,
    LinkFault)`` ships a shaping order to a replica process.
    """

    def __init__(
        self,
        crash_fn: FaultFn,
        recover_fn: FaultFn,
        link_fn: Callable[[int, LinkFault], None],
        replica_ids: Iterable[int],
    ) -> None:
        self._crash_fn = crash_fn
        self._recover_fn = recover_fn
        self._link_fn = link_fn
        self.replica_ids = list(replica_ids)
        self._schedule: List[FaultEvent] = []
        #: Mirrors the simulator injector's ``log``: (t, action, payload).
        self.log: List[Tuple[float, str, Any]] = []
        self._t0: Optional[float] = None

    # -- scheduling (FaultInjector API) --------------------------------
    def crash(self, node_id: int, at: float = 0.0) -> None:
        self._schedule.append(FaultEvent(at, "crash", (node_id,)))

    def recover(self, node_id: int, at: float = 0.0) -> None:
        self._schedule.append(FaultEvent(at, "recover", (node_id,)))

    def delay_egress(self, node_id: int, extra: float, at: float = 0.0) -> None:
        self._schedule.append(FaultEvent(at, "delay", (node_id, extra)))

    def delay_all(
        self, node_ids: Iterable[int], extra: float, at: float = 0.0
    ) -> None:
        for node_id in node_ids:
            self.delay_egress(node_id, extra, at=at)

    def drop_egress(
        self, node_id: int, probability: float, at: float = 0.0
    ) -> None:
        self._schedule.append(FaultEvent(at, "drop", (node_id, probability)))

    def partition(
        self, group_a: Iterable[int], group_b: Iterable[int], at: float = 0.0
    ) -> None:
        set_a, set_b = set(group_a), set(group_b)
        overlap = set_a & set_b
        if overlap:
            raise ValueError(
                f"partition groups must be disjoint; both contain "
                f"{sorted(overlap)}"
            )
        self._schedule.append(
            FaultEvent(at, "partition", (tuple(sorted(set_a)), tuple(sorted(set_b))))
        )

    def heal(self, at: float = 0.0) -> None:
        self._schedule.append(FaultEvent(at, "heal", ()))

    # -- execution ------------------------------------------------------
    async def run(self, t0: float) -> None:
        """Execute the schedule; ``at`` times are relative to ``t0``
        (loop-clock seconds, e.g. the start of the measurement window)."""
        self._t0 = t0
        loop = asyncio.get_running_loop()
        for event in sorted(self._schedule, key=lambda e: e.at):
            remaining = t0 + event.at - loop.time()
            if remaining > 0:
                await asyncio.sleep(remaining)
            await self._execute(event)

    async def _execute(self, event: FaultEvent) -> None:
        loop = asyncio.get_running_loop()
        now = loop.time() - (self._t0 or 0.0)
        action, args = event.action, event.args
        if action == "crash":
            result = self._crash_fn(args[0])
            if result is not None:
                await result
            self.log.append((now, "crash", args[0]))
        elif action == "recover":
            result = self._recover_fn(args[0])
            if result is not None:
                await result
            self.log.append((now, "recover", args[0]))
        elif action == "delay":
            node_id, extra = args
            self._link_fn(node_id, LinkFault(None, delay=extra))
            self.log.append((now, "delay", (node_id, extra)))
        elif action == "drop":
            node_id, probability = args
            self._link_fn(node_id, LinkFault(None, drop=probability))
            self.log.append((now, "drop", (node_id, probability)))
        elif action == "partition":
            group_a, group_b = args
            for node_id in group_a:
                self._link_fn(node_id, LinkFault(tuple(group_b), block=True))
            for node_id in group_b:
                self._link_fn(node_id, LinkFault(tuple(group_a), block=True))
            pairs = tuple(sorted((a, b) for a in group_a for b in group_b))
            self.log.append((now, "partition", pairs))
        elif action == "heal":
            for node_id in self.replica_ids:
                self._link_fn(node_id, LinkFault(None, clear=True))
            self.log.append((now, "heal", None))


# ----------------------------------------------------------------------
# Monitor feed: live snapshots → the `system` shape InvariantMonitor reads
# ----------------------------------------------------------------------
class _SampledState:
    """Plain-dict stand-in for one sampled account state.

    The invariant monitor only *reads* mapping attributes, and
    :meth:`_ReplicaView.update` replaces them wholesale from each
    snapshot — a real (array-backed) :class:`AccountState` would be
    pointless indirection here.
    """

    __slots__ = ("balances", "seqnums", "xlogs")

    def __init__(self, genesis: Dict[Any, int]) -> None:
        self.balances: Dict[Any, int] = dict(genesis)
        self.seqnums: Dict[Any, int] = {client: 0 for client in genesis}
        self.xlogs: Dict[Any, ExclusiveLog] = {
            client: ExclusiveLog(client) for client in genesis
        }


class _ReplicaView:
    """Frozen-until-updated stand-in for one replica's sampled state."""

    def __init__(self, node_id: int, genesis: Dict[Any, int], deps: bool) -> None:
        self.node_id = node_id
        self.state = _SampledState(genesis)
        if deps:
            self._used_deps: Dict[Any, set] = {}
        self.fingerprint: Optional[str] = None
        self.settled = 0
        self.updated_at: Optional[float] = None

    def update(self, view: Dict[str, Any], now: Optional[float] = None) -> None:
        state = self.state
        state.balances = dict(view["balances"])
        state.seqnums = dict(view["seqnums"])
        xlogs: Dict[Any, ExclusiveLog] = {}
        for owner, entries in view["xlogs"].items():
            log = ExclusiveLog(owner)
            log._entries = list(entries)
            xlogs[owner] = log
        state.xlogs = xlogs
        if "used_deps" in view and hasattr(self, "_used_deps"):
            self._used_deps = {c: set(s) for c, s in view["used_deps"].items()}
        self.fingerprint = view.get("fingerprint")
        self.settled = view.get("settled", 0)
        self.updated_at = now


class LiveMonitorFeed:
    """``system``-shaped adapter over live replica snapshots.

    Construct before the run (the monitor captures genesis balances from
    it), then :meth:`update` each arriving :class:`StateSnapshotReply`.
    A crashed replica's view simply stops updating — its frozen state
    must still satisfy every invariant, exactly the monitor's contract
    for crashed-but-correct replicas.  Use ``autostart=False`` when
    constructing the monitor and drive ``monitor.sample(now)`` from the
    parent's control loop.
    """

    def __init__(
        self,
        replica_ids: Iterable[int],
        genesis: Dict[Any, int],
        directory: Any,
        deps: bool,
    ) -> None:
        self.replica_node_ids = list(replica_ids)
        self.directory = directory
        self._views = {
            node_id: _ReplicaView(node_id, genesis, deps)
            for node_id in self.replica_node_ids
        }
        #: Never consulted with ``autostart=False``; present so a
        #: mistaken autostart fails loudly instead of mysteriously.
        self.sim = None

    def replica_by_node(self, node_id: int) -> _ReplicaView:
        return self._views[node_id]

    def update(self, reply: StateSnapshotReply, now: Optional[float] = None) -> None:
        view = self._views.get(reply.node_id)
        if view is not None:
            view.update(reply.view, now)

    def fingerprints(self) -> Dict[int, Optional[str]]:
        return {
            node_id: view.fingerprint for node_id, view in self._views.items()
        }
