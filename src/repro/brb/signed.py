"""Signature-based Byzantine reliable broadcast — the Astro II layer.

Implements Listing 6 of the paper (inspired by Malkhi & Reiter [61]),
with O(N) message complexity:

1. **PREPARE** — the broadcaster sends the payload to all replicas.
2. **ACK** — a replica that has not previously seen a *different* payload
   for the identifier signs the payload digest and unicasts the signed ACK
   back to the broadcaster.
3. **COMMIT** — on a Byzantine quorum (2f+1) of matching ACKs, the
   broadcaster sends everyone a COMMIT carrying the gathered signatures;
   a replica delivers after verifying the certificate.

Agreement holds because two conflicting payloads cannot both gather 2f+1
ACKs (quorum intersection contains a correct replica, which ACKs one
payload per identifier).  The protocol deliberately **lacks totality**: a
Byzantine broadcaster may send COMMIT to only a subset of replicas.
Astro II compensates at the payment layer with CREDIT dependency
certificates (§IV-A), which this module does not know about.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from ..crypto import costs
from ..crypto.hashing import Digest, digest
from ..crypto.keys import Keychain, KeyPair, replica_owner
from ..crypto.signatures import Signature, sign, verify
from ..transport.interface import Transport
from .interface import BroadcastLayer, DeliverFn
from .quorums import byzantine_quorum, max_faulty

__all__ = ["SignedBroadcast", "SbPrepare", "SbAck", "SbCommit"]

_HEADER_BYTES = 48
_ACK_BYTES = _HEADER_BYTES + costs.SIGNATURE_BYTES
#: Per-signature wire cost inside a COMMIT certificate (sig + signer id).
_CERT_ENTRY_BYTES = costs.SIGNATURE_BYTES + 8


class SbPrepare:
    __slots__ = ("seq", "payload", "size")

    def __init__(self, seq: int, payload: Any, size: int) -> None:
        self.seq = seq
        self.payload = payload
        self.size = size

    def __reduce__(self):
        return (SbPrepare, (self.seq, self.payload, self.size))


class SbAck:
    __slots__ = ("origin", "seq", "payload_digest", "signature")

    def __init__(
        self, origin: int, seq: int, payload_digest: Digest, signature: Signature
    ) -> None:
        self.origin = origin
        self.seq = seq
        self.payload_digest = payload_digest
        self.signature = signature

    def __reduce__(self):
        return (SbAck, (self.origin, self.seq, self.payload_digest,
                        self.signature))


class SbCommit:
    __slots__ = ("origin", "seq", "payload_digest", "proof", "size")

    def __init__(
        self,
        origin: int,
        seq: int,
        payload_digest: Digest,
        proof: Tuple[Signature, ...],
        size: int,
    ) -> None:
        self.origin = origin
        self.seq = seq
        self.payload_digest = payload_digest
        self.proof = proof
        self.size = size

    def __reduce__(self):
        return (SbCommit, (self.origin, self.seq, self.payload_digest,
                           self.proof, self.size))


def _ack_content(origin: int, seq: int, payload_digest: Digest) -> tuple:
    """The statement an ACK signature endorses."""
    return ("brb-ack", origin, seq, payload_digest)


def _payload_items(payload: Any) -> int:
    return getattr(payload, "batch_items", 1)


def _payload_digest(payload: Any) -> Digest:
    cached = getattr(payload, "cached_digest", None)
    if cached is not None:
        return cached
    return digest(payload)


class _Instance:
    __slots__ = ("pending", "pending_digest", "acks", "committed", "delivered",
                 "buffered_commit")

    def __init__(self) -> None:
        #: First payload received via PREPARE (the one we ACKed).
        self.pending: Any = None
        self.pending_digest: Optional[Digest] = None
        #: Collected ACK signatures by digest (broadcaster side).
        self.acks: Dict[Digest, Dict[int, Signature]] = {}
        self.committed = False
        self.delivered = False
        #: COMMIT that arrived before its PREPARE (possible with a
        #: Byzantine broadcaster or message reordering).
        self.buffered_commit: Optional[SbCommit] = None


class SignedBroadcast(BroadcastLayer):
    """Signed BRB endpoint attached to one replica node."""

    provides_totality = False

    def __init__(
        self,
        node: Transport,
        peers: Sequence[int],
        deliver: DeliverFn,
        keychain: Keychain,
        key: KeyPair,
        f: Optional[int] = None,
        ack_guard: Optional[Any] = None,
        resend_acks: bool = False,
    ) -> None:
        self.node = node
        self.peers: List[int] = list(peers)
        if node.node_id not in self.peers:
            raise ValueError("broadcast endpoint must be a member of its peer set")
        self.deliver_fn = deliver
        self.keychain = keychain
        self.key = key
        #: Re-ACK a byte-identical duplicate PREPARE.  Off by default (a
        #: duplicate is noise in a reliable-transport world); a crashed
        #: broadcaster that rebroadcasts a pre-crash batch after recovery
        #: needs the fresh ACKs to rebuild its quorum, so live clusters
        #: running with persistence enable this (``brb_resend_acks``).
        self.resend_acks = resend_acks
        #: Optional predicate ``guard(origin, seq, payload) -> bool`` run
        #: before ACKing a PREPARE.  Listing 6's conflict check ("verifies
        #: whether there exists a' != a previously received for identifier
        #: (s, ts)") is stated on *payment* identifiers; with batching the
        #: payment layer owns that state, so it installs the check here.
        self.ack_guard = ack_guard
        self.n = len(self.peers)
        self.f = f if f is not None else max_faulty(self.n)
        self.ack_quorum = byzantine_quorum(self.n, self.f)
        #: Peers minus ourselves, in peer order — the fan-out target list.
        self._others: List[int] = [p for p in self.peers if p != node.node_id]
        self._instances: Dict[Tuple[int, int], _Instance] = {}
        self._delivered_count = 0
        node.on(SbPrepare, self._on_prepare)
        node.on(SbAck, self._on_ack)
        node.on(SbCommit, self._on_commit)

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def broadcast(self, seq: int, payload: Any, payload_bytes: int) -> None:
        size = _HEADER_BYTES + payload_bytes
        message = SbPrepare(seq, payload, size)
        cost = (
            costs.MESSAGE_OVERHEAD
            + costs.PER_BYTE_CPU * size
            + costs.HASH_PER_PAYMENT * _payload_items(payload)
            + costs.ECDSA_SIGN  # the receiver signs its ACK
        )
        self.node.broadcast(
            self._others, message, size=size, recv_cost=cost,
            send_cost=costs.SEND_OVERHEAD,
        )
        # Hashing + signing our own ACK costs CPU even without a send.
        self.node.charge(
            costs.HASH_PER_PAYMENT * _payload_items(payload) + costs.ECDSA_SIGN
        )
        self._handle_prepare(self.node.node_id, message)

    @property
    def delivered_count(self) -> int:
        return self._delivered_count

    def mark_delivered(self, origin: int, seq: int) -> None:
        """Record an out-of-band delivery (WAL replay / peer catch-up).

        A stale COMMIT redelivered by a reconnecting peer then short-
        circuits before certificate verification instead of reaching the
        payment layer's dedup.
        """
        self._instance(origin, seq).delivered = True

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _instance(self, origin: int, seq: int) -> _Instance:
        key = (origin, seq)
        instance = self._instances.get(key)
        if instance is None:
            instance = _Instance()
            self._instances[key] = instance
        return instance

    def _on_prepare(self, src: int, message: SbPrepare) -> None:
        self._handle_prepare(src, message)

    def _handle_prepare(self, src: int, message: SbPrepare) -> None:
        instance = self._instance(src, message.seq)
        if instance.pending is not None:
            # Second PREPARE for the same identifier: if it conflicts, the
            # broadcaster is equivocating and we do nothing (Listing 6
            # acks only the first payload; resending an ACK would be
            # harmless but is unnecessary in an idempotent layer).  With
            # ``resend_acks`` a byte-identical duplicate *is* re-ACKed —
            # a recovered broadcaster relaunching a pre-crash batch lost
            # its collected quorum and needs the signatures again.
            if (
                self.resend_acks
                and src != self.node.node_id
                and instance.pending_digest == _payload_digest(message.payload)
            ):
                signature = sign(
                    self.key,
                    _ack_content(src, message.seq, instance.pending_digest),
                )
                ack = SbAck(src, message.seq, instance.pending_digest, signature)
                ack_cost = costs.MESSAGE_OVERHEAD + costs.ECDSA_VERIFY
                self.node.send(
                    src, ack, size=_ACK_BYTES, recv_cost=ack_cost,
                    send_cost=costs.SEND_OVERHEAD,
                )
            return
        if self.ack_guard is not None and not self.ack_guard(
            src, message.seq, message.payload
        ):
            # Listing 6: a conflicting payload is never ACKed.  The check
            # also runs for our own broadcasts: a Byzantine broadcaster
            # equivocating through this very endpoint must not count its
            # own ACK twice, or quorum intersection breaks.
            return
        payload_digest = _payload_digest(message.payload)
        instance.pending = message.payload
        instance.pending_digest = payload_digest
        signature = sign(self.key, _ack_content(src, message.seq, payload_digest))
        ack = SbAck(src, message.seq, payload_digest, signature)
        if src == self.node.node_id:
            self._apply_ack(src, ack)
        else:
            ack_cost = costs.MESSAGE_OVERHEAD + costs.ECDSA_VERIFY
            self.node.send(
                src, ack, size=_ACK_BYTES, recv_cost=ack_cost,
                send_cost=costs.SEND_OVERHEAD,
            )
        # A COMMIT may have arrived before the PREPARE; retry it now that
        # we hold the payload.
        if instance.buffered_commit is not None:
            buffered = instance.buffered_commit
            instance.buffered_commit = None
            self._apply_commit(buffered)

    def _on_ack(self, src: int, message: SbAck) -> None:
        self._apply_ack(src, message)

    def _apply_ack(self, src: int, message: SbAck) -> None:
        if message.origin != self.node.node_id:
            return  # ACKs only matter to the broadcaster
        instance = self._instances.get((message.origin, message.seq))
        if instance is not None and instance.committed:
            # Quorum already gathered and COMMIT sent: late ACKs cannot
            # matter, so skip the signature verification.
            return
        content = _ack_content(message.origin, message.seq, message.payload_digest)
        if not verify(self.keychain, message.signature, content):
            return
        if message.signature.signer != self._signer_for(src):
            return
        instance = self._instance(message.origin, message.seq)
        bucket = instance.acks.setdefault(message.payload_digest, {})
        bucket[src] = message.signature
        if len(bucket) >= self.ack_quorum and not instance.committed:
            instance.committed = True
            self._send_commit(message.seq, message.payload_digest, bucket)

    def _send_commit(
        self, seq: int, payload_digest: Digest, bucket: Dict[int, Signature]
    ) -> None:
        proof = tuple(bucket.values())[: self.ack_quorum]
        size = _HEADER_BYTES + len(proof) * _CERT_ENTRY_BYTES
        commit = SbCommit(self.node.node_id, seq, payload_digest, proof, size)
        # Receivers verify the whole certificate: 2f+1 signature checks.
        cost = (
            costs.MESSAGE_OVERHEAD
            + costs.PER_BYTE_CPU * size
            + costs.ECDSA_VERIFY * len(proof)
        )
        self.node.broadcast(
            self._others, commit, size=size, recv_cost=cost,
            send_cost=costs.SEND_OVERHEAD,
        )
        self._apply_commit(commit)

    def _on_commit(self, src: int, message: SbCommit) -> None:
        self._apply_commit(message)

    def _apply_commit(self, message: SbCommit) -> None:
        instance = self._instance(message.origin, message.seq)
        if instance.delivered:
            return
        if instance.pending is None:
            instance.buffered_commit = message
            return
        if instance.pending_digest != message.payload_digest:
            return  # certificate for a payload we never saw: equivocation
        if not self._valid_certificate(message):
            return
        instance.delivered = True
        self._delivered_count += 1
        self.deliver_fn(message.origin, message.seq, instance.pending)

    # ------------------------------------------------------------------
    # Certificate validation
    # ------------------------------------------------------------------
    def _valid_certificate(self, message: SbCommit) -> bool:
        content = _ack_content(message.origin, message.seq, message.payload_digest)
        # Distinct-signer *count* only.  Signer identities contain strings,
        # so this set's iteration order is PYTHONHASHSEED-dependent — it
        # must never be iterated into a message or certificate (the
        # certificates themselves are built from insertion-ordered ACK
        # buckets in _send_commit).
        signers: Set[Hashable] = set()
        for signature in message.proof:
            if not verify(self.keychain, signature, content):
                return False
            signers.add(signature.signer)
        return len(signers) >= self.ack_quorum

    @staticmethod
    def _signer_for(node_id: int) -> Hashable:
        """Key owner identity expected for a replica node id."""
        return replica_owner(node_id)
