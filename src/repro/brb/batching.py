"""Payment batching for the broadcast layer (§VI-A).

Both Astro variants batch at the level of the broadcast protocol: the
replica sending a PREPARE assembles a batch of payments — potentially from
different clients — to amortize authentication and network overheads.
Astro II adds a second level: payments inside a batch are segregated into
*sub-batches* by the representative replica of their beneficiary, so one
CREDIT signature covers a whole sub-batch.

The paper's configuration signs one batch of up to 256 payments (§VI-A);
:data:`DEFAULT_BATCH_SIZE` matches that.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generic, Hashable, List, Optional, Sequence, Tuple, TypeVar

from ..crypto.hashing import Digest, digest
from ..transport.interface import Clock, TimerHandle

__all__ = ["Batch", "Batcher", "KeyedCoalescer", "group_by_representative",
           "DEFAULT_BATCH_SIZE", "DEFAULT_BATCH_DELAY"]

#: Paper's batch size: one signature per 256 payments (§VI-A).
DEFAULT_BATCH_SIZE = 256

#: Maximum time a payment waits for its batch to fill before the batch is
#: flushed anyway.  Keeps latency bounded at low load.
DEFAULT_BATCH_DELAY = 0.01

T = TypeVar("T")


class Batch:
    """An immutable batch of payments broadcast as one BRB payload."""

    __slots__ = ("items", "batch_items", "size_bytes", "_digest", "_canonical")

    #: Wire size of one payment: spender, beneficiary, amount, sequence
    #: number, and client authentication data — "roughly 100 bytes" (§VI-B).
    PAYMENT_BYTES = 100

    def __init__(self, items: Sequence[Any]) -> None:
        if not items:
            raise ValueError("a batch must contain at least one payment")
        self.items: Tuple[Any, ...] = tuple(items)
        self.batch_items = len(self.items)
        size = 0
        for item in self.items:
            size += getattr(item, "wire_bytes", self.PAYMENT_BYTES)
        self.size_bytes = size
        self._digest: Optional[Digest] = None
        self._canonical: Optional[tuple] = None

    @property
    def cached_digest(self) -> Digest:
        """Digest of the batch content, computed once per object.

        Derived from the items' own memoized digests: two batches carry
        equal content iff their item digest sequences match, which is the
        same collision-freedom guarantee ``digest`` gives directly.
        Caching per object is sound because batches are immutable: an
        equivocating broadcaster necessarily creates distinct objects for
        its distinct payloads.
        """
        value = self._digest
        if value is None:
            try:
                parts = tuple([item.cached_digest for item in self.items])
            except AttributeError:
                parts = tuple([digest(item) for item in self.items])
            value = self._digest = hash(("batch", parts)) & 0xFFFFFFFFFFFFFFFF
        return value

    def canonical(self) -> tuple:
        value = self._canonical
        if value is None:
            value = self._canonical = tuple(
                item.canonical() if hasattr(item, "canonical") else item
                for item in self.items
            )
        return value

    def __reduce__(self):
        # Compact cross-process pickling (repro.sim.shard): items only;
        # sizes and memoized digests are recomputed on arrival.
        return (Batch, (self.items,))

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return self.batch_items

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Batch n={self.batch_items}>"


class Batcher(Generic[T]):
    """Accumulates items and flushes them as batches.

    Flushes when ``max_size`` items accumulate or ``max_delay`` elapses
    since the first pending item, whichever comes first.  ``flush_fn``
    receives the list of items.
    """

    def __init__(
        self,
        clock: Clock,
        flush_fn: Callable[[List[T]], None],
        max_size: int = DEFAULT_BATCH_SIZE,
        max_delay: float = DEFAULT_BATCH_DELAY,
    ) -> None:
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        self.clock = clock
        self.flush_fn = flush_fn
        self.max_size = max_size
        self.max_delay = max_delay
        self._pending: List[T] = []
        self._timer: Optional[TimerHandle] = None
        self.batches_flushed = 0

    def add(self, item: T) -> None:
        self._pending.append(item)
        if len(self._pending) >= self.max_size:
            self.flush()
        elif self._timer is None:
            self._timer = self.clock.schedule(self.max_delay, self._on_timer)

    def add_many(self, items: Sequence[T]) -> None:
        for item in items:
            self.add(item)

    def _on_timer(self) -> None:
        self._timer = None
        if self._pending:
            self.flush()

    def flush(self) -> None:
        """Flush pending items immediately (no-op when empty)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        items, self._pending = self._pending, []
        self.batches_flushed += 1
        self.flush_fn(items)

    @property
    def pending_count(self) -> int:
        return len(self._pending)


class KeyedCoalescer(Generic[T]):
    """Per-key :class:`Batcher`: one independent time/size window per key.

    Items accumulate in per-key buckets; a key's bucket is flushed as one
    group when its accumulated weight reaches ``max_size`` or ``max_delay``
    after the key's *first* pending item, whichever comes first.
    ``flush_fn`` receives ``(key, items)``.  ``weight_fn`` maps an item to
    its weight against ``max_size`` (default: every item weighs 1) — Astro
    II's CREDIT transport windows weigh a buffered sub-batch by its
    payment count, so the size cap bounds wire bytes, not message count.

    This is the keyed generalization of :class:`Batcher` (Astro II's
    cross-delivery CREDIT coalescing keys buckets by beneficiary
    representative).  :class:`Batcher` itself stays a separate class: its
    single-bucket ``add`` sits on the per-payment ingest hot path and its
    timer/sequence-number discipline is pinned byte-for-byte by the
    golden-history determinism tests.

    Buckets live in an insertion-ordered dict and timers are per key, so
    flush order is a pure function of arrival order — never of hash-seed-
    dependent set/dict internals (string keys would otherwise order
    flushes by ``PYTHONHASHSEED``).
    """

    __slots__ = ("clock", "flush_fn", "max_size", "max_delay", "weight_fn",
                 "_pending", "_weights", "_timers", "flushes",
                 "items_coalesced")

    def __init__(
        self,
        clock: Clock,
        flush_fn: Callable[[Hashable, List[T]], None],
        max_size: int = DEFAULT_BATCH_SIZE,
        max_delay: float = DEFAULT_BATCH_DELAY,
        weight_fn: Optional[Callable[[T], int]] = None,
    ) -> None:
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        self.clock = clock
        self.flush_fn = flush_fn
        self.max_size = max_size
        self.max_delay = max_delay
        self.weight_fn = weight_fn
        self._pending: Dict[Hashable, List[T]] = {}
        self._weights: Dict[Hashable, int] = {}
        self._timers: Dict[Hashable, TimerHandle] = {}
        self.flushes = 0
        self.items_coalesced = 0

    def add(self, key: Hashable, item: T) -> None:
        weight = 1 if self.weight_fn is None else self.weight_fn(item)
        bucket = self._pending.get(key)
        if bucket is None:
            self._pending[key] = [item]
            self._weights[key] = weight
            if weight >= self.max_size:
                self.flush_key(key)
                return
            self._timers[key] = self.clock.schedule(
                self.max_delay, self._on_timer, key
            )
            return
        bucket.append(item)
        total = self._weights[key] + weight
        self._weights[key] = total
        if total >= self.max_size:
            self.flush_key(key)

    def add_many(self, key: Hashable, items: Sequence[T]) -> None:
        for item in items:
            self.add(key, item)

    def _on_timer(self, key: Hashable) -> None:
        self._timers.pop(key, None)
        if key in self._pending:
            self.flush_key(key)

    def flush_key(self, key: Hashable) -> None:
        """Flush one key's bucket immediately (no-op when empty)."""
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        items = self._pending.pop(key, None)
        self._weights.pop(key, None)
        if not items:
            return
        self.flushes += 1
        self.items_coalesced += len(items)
        self.flush_fn(key, items)

    def flush_all(self) -> None:
        """Flush every pending bucket, in key-insertion order."""
        for key in list(self._pending):
            self.flush_key(key)

    @property
    def pending_count(self) -> int:
        return sum(len(bucket) for bucket in self._pending.values())

    def pending_for(self, key: Hashable) -> int:
        return len(self._pending.get(key, ()))


def group_by_representative(
    items: Sequence[T], representative_of: Callable[[T], Hashable]
) -> Dict[Hashable, List[T]]:
    """Astro II's second batching level (§VI-A).

    Splits a batch into sub-batches keyed by the representative replica of
    each payment's beneficiary; the settling replica then produces one
    CREDIT signature per sub-batch instead of one per payment.
    """
    groups: Dict[Hashable, List[T]] = {}
    for item in items:
        groups.setdefault(representative_of(item), []).append(item)
    return groups
