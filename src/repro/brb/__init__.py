"""Byzantine reliable broadcast layer.

Two BRB implementations back the two Astro variants (§IV):
:class:`BrachaBroadcast` (echo-based, MACs, O(N²) messages, totality) and
:class:`SignedBroadcast` (digital signatures, O(N) messages, no totality).
Batching utilities implement the paper's 1- and 2-level batching scheme.
"""

from .batching import (
    DEFAULT_BATCH_DELAY,
    DEFAULT_BATCH_SIZE,
    Batch,
    Batcher,
    group_by_representative,
)
from .bracha import BrachaBroadcast, BrbEcho, BrbPrepare, BrbReady
from .interface import BroadcastLayer, DeliverFn, Identifier
from .quorums import byzantine_quorum, max_faulty, validate_system_size
from .signed import SbAck, SbCommit, SbPrepare, SignedBroadcast

__all__ = [
    "DEFAULT_BATCH_DELAY",
    "DEFAULT_BATCH_SIZE",
    "Batch",
    "Batcher",
    "group_by_representative",
    "BrachaBroadcast",
    "BrbEcho",
    "BrbPrepare",
    "BrbReady",
    "BroadcastLayer",
    "DeliverFn",
    "Identifier",
    "byzantine_quorum",
    "max_faulty",
    "validate_system_size",
    "SbAck",
    "SbCommit",
    "SbPrepare",
    "SignedBroadcast",
]
