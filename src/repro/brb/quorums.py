"""Byzantine quorum arithmetic (Malkhi & Reiter [60]).

All protocols in the paper assume N replicas of which f < N/3 may be
Byzantine, with the optimal threshold N = 3f + 1 used in the evaluation
(§VI-A).  Quorums are sized so any two intersect in at least one correct
replica.
"""

from __future__ import annotations

__all__ = ["max_faulty", "byzantine_quorum", "validate_system_size"]


def max_faulty(n: int) -> int:
    """Largest f tolerated by n replicas (f < n/3)."""
    return (n - 1) // 3


def byzantine_quorum(n: int, f: int) -> int:
    """Smallest quorum size with correct-replica intersection.

    ``ceil((n + f + 1) / 2)``; equals the familiar 2f+1 when n = 3f+1.
    """
    return (n + f) // 2 + 1


def validate_system_size(n: int, f: int) -> None:
    """Raise if n replicas cannot tolerate f Byzantine failures."""
    if f < 0:
        raise ValueError(f"f must be non-negative, got {f}")
    if n < 3 * f + 1:
        raise ValueError(f"need n >= 3f+1 replicas, got n={n}, f={f}")
