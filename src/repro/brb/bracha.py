"""Bracha's Byzantine reliable broadcast — the Astro I broadcast layer.

Implements Listing 5 of the paper (based on Bracha & Toueg [18], [19]):

1. **PREPARE** — the broadcaster sends the payload to all replicas.
2. **ECHO** — the first time a replica sees an identifier, it echoes the
   payload to all replicas.
3. **READY** — on a Byzantine quorum of matching ECHOes (or f+1 matching
   READYs, the amplification rule), a replica sends READY to all; it
   delivers after 2f+1 matching READYs, in FIFO order per origin.

ECHO and READY carry the full payload (as in Listing 5), giving the
protocol its O(N²·|a|) bandwidth — the reason Astro I trails Astro II in
WAN settings (§IV-A).  Links are MAC-authenticated; the network substrate
already prevents spoofing, and MAC verification CPU cost is charged per
message.  Bracha's protocol provides **totality**: once any correct
replica delivers, READY amplification drags every correct replica along.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..crypto import costs
from ..crypto.hashing import Digest, digest
from ..transport.interface import Transport
from .interface import BroadcastLayer, DeliverFn
from .quorums import byzantine_quorum, max_faulty

__all__ = ["BrachaBroadcast", "BrbPrepare", "BrbEcho", "BrbReady"]

#: Wire overhead of a protocol message (headers + MAC tag).
_HEADER_BYTES = 48


class BrbPrepare:
    __slots__ = ("seq", "payload", "size")

    def __init__(self, seq: int, payload: Any, size: int) -> None:
        self.seq = seq
        self.payload = payload
        self.size = size

    def __reduce__(self):
        return (BrbPrepare, (self.seq, self.payload, self.size))


class BrbEcho:
    __slots__ = ("origin", "seq", "payload", "size")

    def __init__(self, origin: int, seq: int, payload: Any, size: int) -> None:
        self.origin = origin
        self.seq = seq
        self.payload = payload
        self.size = size

    def __reduce__(self):
        return (BrbEcho, (self.origin, self.seq, self.payload, self.size))


class BrbReady:
    __slots__ = ("origin", "seq", "payload", "size")

    def __init__(self, origin: int, seq: int, payload: Any, size: int) -> None:
        self.origin = origin
        self.seq = seq
        self.payload = payload
        self.size = size

    def __reduce__(self):
        return (BrbReady, (self.origin, self.seq, self.payload, self.size))


class _Instance:
    """Per-identifier protocol state at one replica."""

    __slots__ = ("echo_sent", "ready_sent", "echoes", "readys", "delivered")

    def __init__(self) -> None:
        self.echo_sent = False
        self.ready_sent = False
        #: digest -> (payload, set of replicas that echoed it)
        self.echoes: Dict[Digest, Tuple[Any, Set[int]]] = {}
        self.readys: Dict[Digest, Tuple[Any, Set[int]]] = {}
        self.delivered = False


def _payload_items(payload: Any) -> int:
    """Number of hashable items in a payload (1 for non-batches)."""
    return getattr(payload, "batch_items", 1)


def _payload_digest(payload: Any) -> Digest:
    """Payload digest, using the payload's cached value when available."""
    cached = getattr(payload, "cached_digest", None)
    if cached is not None:
        return cached
    return digest(payload)


class BrachaBroadcast(BroadcastLayer):
    """Bracha BRB endpoint attached to one replica node."""

    provides_totality = True

    def __init__(
        self,
        node: Transport,
        peers: Sequence[int],
        deliver: DeliverFn,
        f: Optional[int] = None,
        fifo: bool = True,
    ) -> None:
        self.node = node
        self.peers: List[int] = list(peers)
        if node.node_id not in self.peers:
            raise ValueError("broadcast endpoint must be a member of its peer set")
        self.deliver_fn = deliver
        self.n = len(self.peers)
        self.f = f if f is not None else max_faulty(self.n)
        self.echo_quorum = byzantine_quorum(self.n, self.f)
        self.ready_quorum = 2 * self.f + 1
        self.amplify_threshold = self.f + 1
        self.fifo = fifo
        #: Peers minus ourselves, in peer order — the fan-out target list.
        self._others: List[int] = [p for p in self.peers if p != node.node_id]
        self._instances: Dict[Tuple[int, int], _Instance] = {}
        #: Per-origin: highest contiguously delivered sequence number.
        self._delivered_up_to: Dict[int, int] = {}
        #: Out-of-order complete payloads awaiting FIFO drain.
        self._completed: Dict[int, Dict[int, Any]] = {}
        #: Sequence numbers delivered out-of-band (WAL replay / catch-up
        #: import); the FIFO drain skips them instead of waiting for a
        #: READY quorum that may never re-form.  Empty in simulations.
        self._external: Dict[int, Set[int]] = {}
        self._delivered_count = 0
        node.on(BrbPrepare, self._on_prepare)
        node.on(BrbEcho, self._on_echo)
        node.on(BrbReady, self._on_ready)

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def broadcast(self, seq: int, payload: Any, payload_bytes: int) -> None:
        """PREPARE phase: send the payload to all replicas (Listing 5 l.2)."""
        size = _HEADER_BYTES + payload_bytes
        message = BrbPrepare(seq, payload, size)
        cost = self._payload_recv_cost(size, payload)
        self.node.broadcast(
            self._others, message, size=size, recv_cost=cost,
            send_cost=costs.SEND_OVERHEAD,
        )
        # Local short-circuit: the broadcaster processes its own PREPARE.
        self._handle_prepare(self.node.node_id, message)

    @property
    def delivered_count(self) -> int:
        return self._delivered_count

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    @staticmethod
    def _payload_recv_cost(size: int, payload: Any) -> float:
        """CPU to receive+authenticate+hash a payload-carrying message."""
        return (
            costs.MESSAGE_OVERHEAD
            + costs.PER_BYTE_CPU * size
            + costs.MAC_VERIFY
            + costs.HASH_PER_PAYMENT * _payload_items(payload)
        )

    @staticmethod
    def _control_recv_cost(size: int) -> float:
        """CPU to receive an ECHO/READY (payload already hashed once)."""
        return costs.MESSAGE_OVERHEAD + costs.PER_BYTE_CPU * size + costs.MAC_VERIFY

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _instance(self, origin: int, seq: int) -> _Instance:
        key = (origin, seq)
        instance = self._instances.get(key)
        if instance is None:
            instance = _Instance()
            self._instances[key] = instance
        return instance

    def _on_prepare(self, src: int, message: BrbPrepare) -> None:
        self._handle_prepare(src, message)

    def _handle_prepare(self, src: int, message: BrbPrepare) -> None:
        # The origin of a PREPARE is its (authenticated) sender, so a
        # Byzantine replica cannot broadcast under another identity.
        instance = self._instance(src, message.seq)
        if instance.echo_sent:
            return
        instance.echo_sent = True
        echo = BrbEcho(src, message.seq, message.payload, message.size)
        self._send_and_self_apply(echo, self._apply_echo)

    def _on_echo(self, src: int, message: BrbEcho) -> None:
        self._apply_echo(src, message)

    def _apply_echo(self, src: int, message: BrbEcho) -> None:
        instance = self._instance(message.origin, message.seq)
        if instance.ready_sent:
            # Quorum already reached: late ECHOes can never change our
            # vote, so skip the digest lookup and vote bookkeeping.
            return
        payload_digest = _payload_digest(message.payload)
        entry = instance.echoes.get(payload_digest)
        if entry is None:
            entry = (message.payload, set())
            instance.echoes[payload_digest] = entry
        voters = entry[1]
        voters.add(src)
        if len(voters) >= self.echo_quorum:
            instance.ready_sent = True
            ready = BrbReady(message.origin, message.seq, message.payload, message.size)
            self._send_and_self_apply(ready, self._apply_ready)

    def _on_ready(self, src: int, message: BrbReady) -> None:
        self._apply_ready(src, message)

    def _apply_ready(self, src: int, message: BrbReady) -> None:
        instance = self._instance(message.origin, message.seq)
        if instance.delivered and instance.ready_sent:
            # Both READY-driven transitions already happened; late READYs
            # are pure noise for this instance.
            return
        payload_digest = _payload_digest(message.payload)
        entry = instance.readys.get(payload_digest)
        if entry is None:
            entry = (message.payload, set())
            instance.readys[payload_digest] = entry
        entry[1].add(src)
        count = len(entry[1])
        if count >= self.amplify_threshold and not instance.ready_sent:
            # Amplification: join the READY wave without having seen the
            # echo quorum ourselves (Listing 5 l.26-29).  This is what
            # gives Bracha its totality property.
            instance.ready_sent = True
            ready = BrbReady(message.origin, message.seq, message.payload, message.size)
            self._send_and_self_apply(ready, self._apply_ready)
        if count >= self.ready_quorum and not instance.delivered:
            instance.delivered = True
            self._complete(message.origin, message.seq, message.payload)

    # ------------------------------------------------------------------
    # Delivery (FIFO per origin, Listing 5 l.32)
    # ------------------------------------------------------------------
    def _complete(self, origin: int, seq: int, payload: Any) -> None:
        if not self.fifo:
            self._delivered_count += 1
            self.deliver_fn(origin, seq, payload)
            return
        pending = self._completed.setdefault(origin, {})
        pending[seq] = payload
        self._advance(origin, pending)

    def _advance(self, origin: int, pending: Dict[int, Any]) -> None:
        """Drain the FIFO frontier, skipping out-of-band deliveries."""
        external = self._external.get(origin)
        delivered_up_to = self._delivered_up_to.get(origin, 0)
        while True:
            next_seq = delivered_up_to + 1
            if next_seq in pending:
                delivered_up_to = next_seq
                ready_payload = pending.pop(next_seq)
                self._delivered_count += 1
                self.deliver_fn(origin, next_seq, ready_payload)
            elif external is not None and next_seq in external:
                external.discard(next_seq)
                delivered_up_to = next_seq
            else:
                break
        self._delivered_up_to[origin] = delivered_up_to

    def mark_delivered(self, origin: int, seq: int) -> None:
        """Record an out-of-band delivery (WAL replay / catch-up import).

        The instance is flagged so READY quorums for it no longer
        deliver, and the FIFO drain treats the sequence number as done.
        """
        self._instance(origin, seq).delivered = True
        if not self.fifo:
            return
        if seq <= self._delivered_up_to.get(origin, 0):
            return
        self._external.setdefault(origin, set()).add(seq)
        pending = self._completed.setdefault(origin, {})
        pending.pop(seq, None)
        self._advance(origin, pending)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _send_and_self_apply(
        self, message: Any, apply: Callable[[int, Any], None]
    ) -> None:
        """Send to all peers and count our own vote locally.

        Real implementations do not loop a message through their own
        network stack; applying locally also keeps event counts down.
        """
        cost = self._control_recv_cost(message.size)
        self.node.broadcast(
            self._others, message, size=message.size, recv_cost=cost,
            send_cost=costs.SEND_OVERHEAD,
        )
        apply(self.node.node_id, message)
