"""Byzantine reliable broadcast (BRB) interface.

Astro's replication layer is a BRB primitive with the properties of §IV
(inspired by [59]), stated over payloads carrying an *identifier*
``(origin, seq)``:

* **Agreement** — if a correct replica delivers payload ``a`` with
  identifier ``(s, n)``, no correct replica delivers ``a' != a`` with the
  same identifier.
* **Integrity** — a correct replica delivers a payload at most once, and
  only if it was broadcast by some replica.
* **Reliability** — if the broadcaster is correct, all correct replicas
  eventually deliver.
* **Totality** *(optional)* — if any correct replica delivers, every
  correct replica eventually delivers.  Bracha's protocol provides it;
  the signed protocol does not (Astro II compensates with dependency
  certificates, §IV-A).

Concrete implementations: :class:`~repro.brb.bracha.BrachaBroadcast`
(Astro I) and :class:`~repro.brb.signed.SignedBroadcast` (Astro II).
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Tuple

__all__ = ["BroadcastLayer", "DeliverFn", "Identifier"]

#: BRB payload identifier: (origin, sequence-number).
Identifier = Tuple[Hashable, int]

#: Delivery callback: ``deliver(origin, seq, payload)``.
DeliverFn = Callable[[Hashable, int, Any], None]


class BroadcastLayer:
    """Abstract BRB endpoint living on one replica.

    Instances are per-replica; ``broadcast`` reliably sends a payload under
    this replica's identity, and the constructor-supplied deliver callback
    fires exactly once per delivered identifier.
    """

    #: Whether this implementation provides the totality property.
    provides_totality: bool = False

    def broadcast(self, seq: int, payload: Any, payload_bytes: int) -> None:
        """Reliably broadcast ``payload`` as this replica's ``seq``-th message.

        ``seq`` must increase by 1 per broadcast from the same origin
        (FIFO identifiers); ``payload_bytes`` sizes the wire message for
        the resource model.
        """
        raise NotImplementedError

    @property
    def delivered_count(self) -> int:
        raise NotImplementedError
