"""Workloads and load drivers for the evaluation."""

from .drivers import ClosedLoopDriver, OpenLoopDriver
from .smallbank import (
    CROSS_SHARD_FRACTION,
    SMALLBANK_MIX,
    SmallbankWorkload,
    bank,
    checking,
    savings,
    shard_assignment,
    smallbank_genesis,
)
from .uniform import UniformWorkload, uniform_genesis

__all__ = [
    "ClosedLoopDriver",
    "OpenLoopDriver",
    "CROSS_SHARD_FRACTION",
    "SMALLBANK_MIX",
    "SmallbankWorkload",
    "bank",
    "checking",
    "savings",
    "shard_assignment",
    "smallbank_genesis",
    "UniformWorkload",
    "uniform_genesis",
]
