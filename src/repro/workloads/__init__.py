"""Workloads and load drivers for the evaluation."""

from .base import (
    WORKLOAD_NAMES,
    Workload,
    make_workload,
    resolve_workload_name,
    workload_genesis,
)
from .drivers import ClosedLoopDriver, OpenLoopDriver
from .merchant import (
    MERCHANT_BALANCE,
    MERCHANT_FRACTION,
    MerchantWorkload,
    is_merchant,
    merchant_genesis,
    merchant_split,
)
from .smallbank import (
    CROSS_SHARD_FRACTION,
    SMALLBANK_MIX,
    SmallbankWorkload,
    bank,
    checking,
    savings,
    shard_assignment,
    smallbank_genesis,
)
from .uniform import UniformWorkload, uniform_genesis
from .zipf import ZipfWorkload

__all__ = [
    "WORKLOAD_NAMES",
    "Workload",
    "make_workload",
    "resolve_workload_name",
    "workload_genesis",
    "ClosedLoopDriver",
    "OpenLoopDriver",
    "MERCHANT_BALANCE",
    "MERCHANT_FRACTION",
    "MerchantWorkload",
    "is_merchant",
    "merchant_genesis",
    "merchant_split",
    "CROSS_SHARD_FRACTION",
    "SMALLBANK_MIX",
    "SmallbankWorkload",
    "bank",
    "checking",
    "savings",
    "shard_assignment",
    "smallbank_genesis",
    "UniformWorkload",
    "uniform_genesis",
    "ZipfWorkload",
]
