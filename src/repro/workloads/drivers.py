"""Load drivers: open-loop (rate-driven) and closed-loop clients.

The paper measures peak throughput by saturating the systems with many
client threads (open-loop here) and runs the robustness timelines with 10
single-threaded clients issuing one request at a time (closed-loop,
§VI-D).  Both drivers record the same observables: settled payments per
second (client-visible confirmations) and confirmation latency.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from ..core.payment import ClientId, Payment
from ..sim.metrics import LatencyRecorder, ThroughputMeter

__all__ = ["OpenLoopDriver", "ClosedLoopDriver"]

#: Any system exposing submit()/add_confirm_hook()/add_client_node().
PaymentSystemLike = Any


class OpenLoopDriver:
    """Injects payments at a fixed aggregate rate, independent of progress.

    Arrivals are smoothed over small ticks (default 5 ms): per tick the
    driver injects ``rate * tick`` payments (with fractional carry), which
    keeps simulator event counts proportional to the injected load while
    preserving the offered rate exactly.
    """

    def __init__(
        self,
        system: PaymentSystemLike,
        workload: Any,
        rate: float,
        duration: float,
        start: float = 0.0,
        tick: float = 0.005,
        meter: Optional[ThroughputMeter] = None,
        recorder: Optional[LatencyRecorder] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.system = system
        self.workload = workload
        self.rate = rate
        self.start = start
        self.end = start + duration
        self.tick = tick
        self.meter = meter
        self.recorder = recorder
        self.injected = 0
        self.confirmed = 0
        self._carry = 0.0
        system.add_confirm_hook(self._on_confirm)
        system.sim.schedule_at(start, self._tick_fn)

    def _tick_fn(self) -> None:
        system = self.system
        now = system.sim.now
        if now >= self.end:
            return
        self._carry += self.rate * self.tick
        count = int(self._carry)
        self._carry -= count
        next_op = self.workload.next
        submit = system.submit
        injected = 0
        for _ in range(count):
            operation = next_op()
            if operation is None:
                continue  # read-only op (e.g. Smallbank Balance)
            submit(*operation)
            injected += 1
        self.injected += injected
        system.sim.call_after(self.tick, self._tick_fn)

    def _on_confirm(self, payment: Payment, settled_at: float) -> None:
        self.confirmed += 1
        if self.meter is not None:
            self.meter.record(settled_at)
        if self.recorder is not None and payment.submitted_at is not None:
            self.recorder.record(payment.submitted_at, settled_at)


class ClosedLoopDriver:
    """One-in-flight clients: each confirmation triggers the next payment.

    Models the paper's robustness setup — "we use 10 clients, each running
    a single thread" (§VI-D).  Clients whose representative fails simply
    stall (fate-sharing), exactly as in the paper.
    """

    def __init__(
        self,
        system: PaymentSystemLike,
        client_ids: Sequence[ClientId],
        workload: Any,
        stop_at: float,
        think_time: float = 0.0,
        meter: Optional[ThroughputMeter] = None,
        recorder: Optional[LatencyRecorder] = None,
        stagger: float = 0.1,
    ) -> None:
        self.system = system
        self.workload = workload
        self.stop_at = stop_at
        self.think_time = think_time
        self.meter = meter
        self.recorder = recorder
        self.completed = 0
        self.nodes = []
        for position, client in enumerate(client_ids):
            node = self.system.add_client_node(
                client, on_confirm=self._make_confirm(client)
            )
            self.nodes.append(node)
            offset = stagger * position / max(len(client_ids), 1)
            system.sim.schedule_at(offset, self._issue, client, node)

    def _make_confirm(self, client: ClientId) -> Callable[[Payment, float], None]:
        def confirmed(payment: Payment, latency: float) -> None:
            now = self.system.sim.now
            self.completed += 1
            if self.meter is not None:
                self.meter.record(now)
            if self.recorder is not None:
                self.recorder.record(now - latency, now)
            node = self._node_of(client)
            if now + self.think_time < self.stop_at:
                if self.think_time > 0:
                    self.system.sim.schedule(self.think_time, self._issue, client, node)
                else:
                    self._issue(client, node)

        return confirmed

    def _node_of(self, client: ClientId):
        for node in self.nodes:
            if node.client_id == client:
                return node
        raise KeyError(client)

    def _issue(self, client: ClientId, node: Any) -> None:
        if self.system.sim.now >= self.stop_at:
            return
        _, beneficiary, amount = self.workload.next_for(client)
        node.pay(beneficiary, amount)
