"""The common workload surface and the ``REPRO_WORKLOAD`` knob.

Every payment workload generates ``(spender, beneficiary, amount)``
triples behind the same minimal :class:`Workload` protocol, so the
bench harness (``bench/systems.py`` genesis construction,
``bench/runner.py``/``bench/peak.py``/``bench/jobs.py`` open-loop
driving) and the live cluster's load generator
(``repro.transport.cluster``) are generic over the demand distribution.

``REPRO_WORKLOAD`` selects the distribution by name:

* ``uniform`` (default, golden-pinned) — the paper's §VI-B shape:
  round-robin spenders, uniform random beneficiaries, ample balances;
* ``zipf`` — hot-account skew on both ends of each payment
  ("Online Payment Network Design": real payment demand is Zipf-like);
* ``merchant`` — many-to-few purchase flows plus merchant payouts over
  *tight* merchant balances, the regime where Astro II's dependency
  certificates actually carry value.

Unset or ``uniform`` reproduces today's golden-pinned behavior exactly.
"""

from __future__ import annotations

import os
from typing import (
    Callable,
    Dict,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from ..core.payment import ClientId

__all__ = [
    "Workload",
    "WORKLOAD_NAMES",
    "resolve_workload_name",
    "make_workload",
    "workload_genesis",
]

Operation = Tuple[ClientId, ClientId, int]


@runtime_checkable
class Workload(Protocol):
    """Anything that yields payment operations for a load driver.

    ``next()`` returns the next ``(spender, beneficiary, amount)``
    triple, or ``None`` for a read-only operation the payment pipeline
    never sees (drivers skip those).  Workloads that support closed-loop
    clients additionally expose
    ``next_for(spender) -> (spender, beneficiary, amount)``.
    """

    def next(self) -> Optional[Operation]: ...


#: Names accepted by ``REPRO_WORKLOAD`` / ``make_workload``.
WORKLOAD_NAMES: Tuple[str, ...] = ("uniform", "zipf", "merchant")


def resolve_workload_name(value: Optional[str] = None) -> str:
    """Resolve the ``REPRO_WORKLOAD`` knob to a workload name.

    ``value`` overrides the environment (explicit caller choice); unset
    resolves to ``uniform``, the golden-pinned default.
    """
    raw = value if value is not None else os.environ.get("REPRO_WORKLOAD")
    if raw is None or not raw.strip():
        return "uniform"
    name = raw.strip().lower()
    if name not in WORKLOAD_NAMES:
        allowed = "|".join(WORKLOAD_NAMES)
        raise ValueError(
            f"REPRO_WORKLOAD must be one of {allowed}; got {raw!r}"
        )
    return name


def make_workload(
    name: str, clients: Sequence[ClientId], seed: int = 0
) -> Workload:
    """Instantiate the named workload over ``clients``.

    ``uniform`` constructs exactly the pre-refactor default
    (``UniformWorkload(clients, seed=seed)``), keeping unset-knob runs
    byte-identical to the golden histories.
    """
    from .merchant import MerchantWorkload
    from .uniform import UniformWorkload
    from .zipf import ZipfWorkload

    factories: Dict[str, Callable[..., Workload]] = {
        "uniform": UniformWorkload,
        "zipf": ZipfWorkload,
        "merchant": MerchantWorkload,
    }
    try:
        factory = factories[name]
    except KeyError:
        allowed = "|".join(WORKLOAD_NAMES)
        raise ValueError(
            f"unknown workload {name!r}: expected one of {allowed}"
        ) from None
    return factory(clients, seed=seed)


def workload_genesis(name: str, num_clients: int) -> Dict[ClientId, int]:
    """Genesis matching the named workload's balance regime.

    ``uniform`` and ``zipf`` use ample balances (§VI-B: "assume that all
    transactions can be settled immediately"); ``merchant`` starts its
    merchants tight so payouts must be funded by settled purchases
    (credit-funded spends / dependency certificates in Astro II).
    """
    from .merchant import merchant_genesis
    from .uniform import uniform_genesis

    if name == "merchant":
        return merchant_genesis(num_clients)
    if name in ("uniform", "zipf"):
        return uniform_genesis(num_clients)
    allowed = "|".join(WORKLOAD_NAMES)
    raise ValueError(f"unknown workload {name!r}: expected one of {allowed}")
