"""Zipf-skewed payment workload (hot accounts).

Real payment demand is heavily skewed: a small set of hot accounts
(exchanges, brokers, large merchants) appears in a disproportionate
share of transfers.  This workload draws *both* ends of each payment
from a Zipf distribution over the client population, so hot spenders
stress per-client sequencing at their representatives and hot
beneficiaries stress deposit fan-in.

Draws are deterministic and independent of ``PYTHONHASHSEED``: the
generator comes from :func:`repro.sim.rng.stable_rng`, and clients are
ranked by their position in the given sequence (the bench harness
passes ``client_ids_of(system)``, a repr-sorted list, so rank *i* lands
on representative ``i % N`` — the skew spreads across replicas instead
of piling onto one).
"""

from __future__ import annotations

from bisect import bisect_left
from itertools import accumulate
from typing import List, Sequence, Tuple

from ..core.payment import ClientId
from ..sim.rng import stable_rng

__all__ = ["ZipfWorkload"]


class ZipfWorkload:
    """Generates (spender, beneficiary, amount) triples with Zipf skew.

    ``exponent`` is the usual Zipf ``s``: rank *i* (0-based) carries
    weight ``1 / (i + 1) ** s``.  The default 1.1 makes the top 1% of
    accounts carry roughly a third of the draws at 10**5 clients.
    """

    def __init__(
        self,
        clients: Sequence[ClientId],
        seed: int = 0,
        exponent: float = 1.1,
        min_amount: int = 1,
        max_amount: int = 100,
    ) -> None:
        if len(clients) < 2:
            raise ValueError("need at least two clients to transfer between")
        if exponent <= 0:
            raise ValueError(f"Zipf exponent must be > 0; got {exponent}")
        self.clients: List[ClientId] = list(clients)
        self.exponent = exponent
        self._random = stable_rng(
            seed, "workload", "zipf", len(self.clients), exponent
        ).random
        #: Cumulative Zipf weights; a draw is one C-level ``random()``
        #: plus one ``bisect`` — O(log n) per payment, no per-draw
        #: Python loop over the population.
        self._cum: List[float] = list(
            accumulate(
                1.0 / (rank + 1) ** exponent
                for rank in range(len(self.clients))
            )
        )
        self._total = self._cum[-1]
        self.min_amount = min_amount
        self.max_amount = max_amount
        self._amount_span = max_amount - min_amount + 1

    def _draw_index(self) -> int:
        return bisect_left(self._cum, self._random() * self._total)

    def next(self) -> Tuple[ClientId, ClientId, int]:
        """Next payment: Zipf spender, Zipf beneficiary (distinct)."""
        clients = self.clients
        spender = clients[self._draw_index()]
        beneficiary = spender
        while beneficiary == spender:
            beneficiary = clients[self._draw_index()]
        amount = self.min_amount + int(self._random() * self._amount_span)
        return spender, beneficiary, amount

    def next_for(self, spender: ClientId) -> Tuple[ClientId, ClientId, int]:
        """Next payment for a fixed spender (closed-loop clients)."""
        clients = self.clients
        beneficiary = spender
        while beneficiary == spender:
            beneficiary = clients[self._draw_index()]
        amount = self.min_amount + int(self._random() * self._amount_span)
        return spender, beneficiary, amount
