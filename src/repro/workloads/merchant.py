"""Merchant workload: many-to-few purchases plus tight-balance payouts.

Payment traffic in retail networks is *many-to-few*: a large consumer
population pays into a small merchant set, and merchants periodically
pay value back out (settlement to suppliers, refunds, payroll).  Two
properties make this the interesting regime for Astro:

* deposit fan-in concentrates on few accounts (the beneficiary-side
  stress the uniform workload never produces), and
* merchants start with *tight* balances, so their payouts are funded by
  incoming purchases rather than genesis money.  In Astro II that is
  exactly the credit-funded-spend path: the merchant's replicas must
  mint dependency certificates (f+1 CREDIT messages, Listing 7) before
  a payout can settle, and settled payouts carry non-empty ``deps``.

Draws are deterministic via :func:`repro.sim.rng.stable_rng`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.payment import ClientId
from ..sim.rng import stable_rng

__all__ = [
    "MERCHANT_BALANCE",
    "MERCHANT_FRACTION",
    "MerchantWorkload",
    "is_merchant",
    "merchant_genesis",
    "merchant_split",
]

#: Fraction of the population that is a merchant (rounded up to >= 1).
MERCHANT_FRACTION = 0.05

#: Default tight merchant genesis balance — well under one payout, so
#: payouts are funded by settled purchase income, not genesis money.
MERCHANT_BALANCE = 25


def _num_merchants(num_clients: int, fraction: float) -> int:
    return max(1, round(num_clients * fraction))


def is_merchant(client: ClientId) -> bool:
    """True for ids minted by :func:`merchant_genesis` as merchants."""
    return isinstance(client, str) and client.startswith("merchant-")


def merchant_split(
    clients: Sequence[ClientId],
) -> Tuple[List[ClientId], List[ClientId]]:
    """Split a population into ``(consumers, merchants)``.

    Ids minted by :func:`merchant_genesis` split by their ``merchant-``
    prefix; any other population (``uniform_genesis``, the live
    cluster's ``c0000``-style ids) uses its last
    :data:`MERCHANT_FRACTION` as merchants, so genesis builders and the
    workload agree on the merchant set by sharing this function.
    """
    population = list(clients)
    merchants = [c for c in population if is_merchant(c)]
    if merchants:
        return [c for c in population if not is_merchant(c)], merchants
    split = len(population) - _num_merchants(
        len(population), MERCHANT_FRACTION
    )
    return population[:split], population[split:]


def merchant_genesis(
    num_clients: int,
    consumer_balance: int = 10**9,
    merchant_balance: int = MERCHANT_BALANCE,
    fraction: float = MERCHANT_FRACTION,
) -> Dict[ClientId, int]:
    """Genesis with ample consumers and deliberately tight merchants.

    ``merchant_balance`` defaults to well under one payout, so almost
    every merchant payout must wait for settled purchase income
    (queued drains in Astro I / BFT, dependency certificates in
    Astro II).
    """
    if num_clients < 2:
        raise ValueError(
            "merchant_genesis needs at least two clients (one consumer "
            f"and one merchant); got {num_clients}"
        )
    merchants = _num_merchants(num_clients, fraction)
    consumers = num_clients - merchants
    if consumers <= 0:
        raise ValueError(
            f"merchant fraction {fraction} leaves no consumers for "
            f"{num_clients} clients"
        )
    genesis: Dict[ClientId, int] = {
        f"client-{i}": consumer_balance for i in range(consumers)
    }
    for i in range(merchants):
        genesis[f"merchant-{i}"] = merchant_balance
    return genesis


class MerchantWorkload:
    """Generates purchases (consumer → merchant) and payouts (reverse).

    The population splits by id: clients named ``merchant-*`` (from
    :func:`merchant_genesis`) are merchants; with no such ids, the last
    ``MERCHANT_FRACTION`` of the given sequence is used, so the workload
    still runs over a plain ``uniform_genesis`` population.

    ``purchase_fraction`` of operations are purchases with small
    amounts; the rest are payouts whose amounts span several purchases,
    so a payout typically needs more than the merchant's settled
    balance at submission time.
    """

    def __init__(
        self,
        clients: Sequence[ClientId],
        seed: int = 0,
        purchase_fraction: float = 0.8,
        min_amount: int = 1,
        max_amount: int = 100,
        payout_min: int = 50,
        payout_max: int = 400,
    ) -> None:
        if len(clients) < 2:
            raise ValueError("need at least two clients to transfer between")
        if not 0.0 < purchase_fraction < 1.0:
            raise ValueError(
                "purchase_fraction must be strictly between 0 and 1; "
                f"got {purchase_fraction}"
            )
        population = list(clients)
        self.consumers, self.merchants = merchant_split(population)
        if not self.consumers:
            raise ValueError("merchant workload needs at least one consumer")
        self.clients = population
        self.purchase_fraction = purchase_fraction
        self.min_amount = min_amount
        self.max_amount = max_amount
        self.payout_min = payout_min
        self.payout_max = payout_max
        self._amount_span = max_amount - min_amount + 1
        self._payout_span = payout_max - payout_min + 1
        self._random = stable_rng(
            seed, "workload", "merchant", len(population)
        ).random
        self._consumer_cursor = 0
        self._merchant_cursor = 0
        #: Operation counters for reporting / tests.
        self.purchases = 0
        self.payouts = 0

    def _purchase(self) -> Tuple[ClientId, ClientId, int]:
        consumers = self.consumers
        spender = consumers[self._consumer_cursor]
        self._consumer_cursor = (self._consumer_cursor + 1) % len(consumers)
        rand = self._random
        beneficiary = self.merchants[int(rand() * len(self.merchants))]
        amount = self.min_amount + int(rand() * self._amount_span)
        self.purchases += 1
        return spender, beneficiary, amount

    def _payout(self) -> Tuple[ClientId, ClientId, int]:
        merchants = self.merchants
        spender = merchants[self._merchant_cursor]
        self._merchant_cursor = (self._merchant_cursor + 1) % len(merchants)
        rand = self._random
        beneficiary = self.consumers[int(rand() * len(self.consumers))]
        amount = self.payout_min + int(rand() * self._payout_span)
        self.payouts += 1
        return spender, beneficiary, amount

    def next(self) -> Optional[Tuple[ClientId, ClientId, int]]:
        """Next operation: purchase with ``purchase_fraction`` odds."""
        if self._random() < self.purchase_fraction:
            return self._purchase()
        return self._payout()

    def next_for(self, spender: ClientId) -> Tuple[ClientId, ClientId, int]:
        """Next payment for a fixed spender (closed-loop clients).

        Merchants emit payouts; everyone else emits purchases.
        """
        rand = self._random
        if spender in self.merchants:
            beneficiary = self.consumers[int(rand() * len(self.consumers))]
            amount = self.payout_min + int(rand() * self._payout_span)
            self.payouts += 1
            return spender, beneficiary, amount
        merchants = self.merchants
        beneficiary = merchants[int(rand() * len(merchants))]
        amount = self.min_amount + int(rand() * self._amount_span)
        self.purchases += 1
        return spender, beneficiary, amount
