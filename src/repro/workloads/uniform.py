"""Uniform random payment workload (§VI-B microbenchmarks).

Matches the paper's request shape: "The beneficiary and amount fields are
random, and each payment operation covers roughly 100 bytes"; spenders
rotate over the client population so every representative carries load
("clients pick and submit their workload to a random replica").
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from ..core.payment import ClientId

__all__ = ["UniformWorkload", "uniform_genesis"]


def uniform_genesis(
    num_clients: int, balance: int = 10**9, prefix: str = "client"
) -> Dict[ClientId, int]:
    """Genesis with ample balances — the paper's experiments "assume that
    all transactions can be settled immediately" (§VI-B)."""
    if num_clients <= 0:
        raise ValueError(
            f"uniform_genesis needs at least one client; got {num_clients}"
        )
    if balance < 0:
        raise ValueError(f"genesis balance must be >= 0; got {balance}")
    return {f"{prefix}-{i}": balance for i in range(num_clients)}


class UniformWorkload:
    """Generates (spender, beneficiary, amount) triples."""

    def __init__(
        self,
        clients: Sequence[ClientId],
        seed: int = 0,
        min_amount: int = 1,
        max_amount: int = 100,
    ) -> None:
        if len(clients) < 2:
            raise ValueError("need at least two clients to transfer between")
        self.clients: List[ClientId] = list(clients)
        #: Drawing indices as ``int(random() * n)`` costs one C-level call
        #: per draw; ``choice``/``randint`` go through Python-level
        #: rejection sampling, which showed up in workload-bound profiles.
        self._random = random.Random(seed).random
        self.min_amount = min_amount
        self.max_amount = max_amount
        self._amount_span = max_amount - min_amount + 1
        self._cursor = 0

    def next(self) -> Tuple[ClientId, ClientId, int]:
        """Next payment: round-robin spender, random beneficiary/amount."""
        clients = self.clients
        count = len(clients)
        if count < 2:
            # ``clients`` is a public, mutable list; without this check a
            # population shrunk to one client makes the beneficiary
            # redraw below spin forever.
            raise ValueError(
                "UniformWorkload needs at least two clients to draw a "
                f"beneficiary distinct from the spender; have {count}"
            )
        spender = clients[self._cursor]
        self._cursor = (self._cursor + 1) % count
        rand = self._random
        beneficiary = spender
        while beneficiary == spender:
            beneficiary = clients[int(rand() * count)]
        amount = self.min_amount + int(rand() * self._amount_span)
        return spender, beneficiary, amount

    def next_for(self, spender: ClientId) -> Tuple[ClientId, ClientId, int]:
        """Next payment for a fixed spender (closed-loop clients)."""
        clients = self.clients
        count = len(clients)
        if count < 2:
            raise ValueError(
                "UniformWorkload needs at least two clients to draw a "
                f"beneficiary distinct from the spender; have {count}"
            )
        rand = self._random
        beneficiary = spender
        while beneficiary == spender:
            beneficiary = clients[int(rand() * count)]
        amount = self.min_amount + int(rand() * self._amount_span)
        return spender, beneficiary, amount
