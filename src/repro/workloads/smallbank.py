"""Smallbank transaction family, adapted to the cryptocurrency setting.

The paper's sharded evaluation (§VI-C2) uses the Smallbank family from
BLOCKBENCH [33] — H-Store's Smallbank [25] recast so that every account is
an xlog: "we associate each client with two xlogs (for checking and
savings); thus same-client transactions at the application level appear as
full-fledged payments between two distinct xlogs".

Transaction types (H-Store Smallbank, write transactions):

* ``TransactSavings``  — deposit into savings: checking → savings;
* ``DepositChecking``  — external deposit: the shard bank → checking;
* ``SendPayment``      — transfer between two owners' checking accounts
  (the only type that may cross shards);
* ``WriteCheck``       — withdrawal: checking → the shard bank;
* ``Amalgamate``       — move savings into checking: savings → checking.

``Balance`` is a read served locally by the representative and does not
enter the broadcast layer; it is generated (and counted separately) so the
mix matches the benchmark definition.

The cross-shard probability of ``SendPayment`` is derived so that the
*overall* cross-shard fraction equals the paper's 12.5 % (§VI-C2).
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from ..core.payment import ClientId

__all__ = ["SmallbankWorkload", "smallbank_genesis", "SMALLBANK_MIX"]

#: H-Store Smallbank transaction mix (weights sum to 100).
SMALLBANK_MIX: Dict[str, int] = {
    "transact_savings": 15,
    "deposit_checking": 15,
    "send_payment": 25,
    "write_check": 15,
    "amalgamate": 15,
    "balance": 15,
}

#: The paper's overall cross-shard transaction fraction (§VI-C2).
CROSS_SHARD_FRACTION = 0.125


def checking(owner: int) -> ClientId:
    return ("acct", owner, "checking")


def savings(owner: int) -> ClientId:
    return ("acct", owner, "savings")


def bank(shard: int) -> ClientId:
    return ("bank", shard)


def smallbank_genesis(
    num_owners: int, num_shards: int = 1, balance: int = 10**9
) -> Dict[ClientId, int]:
    """Genesis for ``num_owners`` account owners plus one bank per shard."""
    genesis: Dict[ClientId, int] = {}
    for owner in range(num_owners):
        genesis[checking(owner)] = balance
        genesis[savings(owner)] = balance
    for shard in range(num_shards):
        genesis[bank(shard)] = balance * max(num_owners, 1)
    return genesis


def shard_assignment(num_owners: int, num_shards: int) -> Dict[ClientId, int]:
    """Both xlogs of an owner live in the same shard (§VI-C2)."""
    assignment: Dict[ClientId, int] = {}
    for owner in range(num_owners):
        shard = owner % num_shards
        assignment[checking(owner)] = shard
        assignment[savings(owner)] = shard
    for shard in range(num_shards):
        assignment[bank(shard)] = shard
    return assignment


class SmallbankWorkload:
    """Generates Smallbank operations as (spender, beneficiary, amount).

    ``next()`` returns ``None`` for Balance queries (reads never enter the
    payment pipeline); callers count them via :attr:`balance_queries`.
    """

    def __init__(
        self,
        num_owners: int,
        num_shards: int = 1,
        seed: int = 0,
        min_amount: int = 1,
        max_amount: int = 50,
        mix: Optional[Dict[str, int]] = None,
    ) -> None:
        if num_owners < 2:
            raise ValueError("Smallbank needs at least two account owners")
        self.num_owners = num_owners
        self.num_shards = num_shards
        self.mix = dict(mix if mix is not None else SMALLBANK_MIX)
        self._rng = random.Random(seed)
        self.min_amount = min_amount
        self.max_amount = max_amount
        self._types = list(self.mix)
        self._weights = [self.mix[t] for t in self._types]
        self.balance_queries = 0
        self.cross_shard_sent = 0
        self.total_writes = 0
        # Solve for SendPayment's cross-shard probability so the overall
        # fraction of cross-shard transactions is 12.5 %.
        total = sum(self.mix.values())
        send_share = self.mix.get("send_payment", 0) / total
        if num_shards > 1 and send_share > 0:
            self.cross_probability = min(1.0, CROSS_SHARD_FRACTION / send_share)
        else:
            self.cross_probability = 0.0

    # ------------------------------------------------------------------
    def _amount(self) -> int:
        return self._rng.randint(self.min_amount, self.max_amount)

    def _owner(self) -> int:
        return self._rng.randrange(self.num_owners)

    def _shard_of_owner(self, owner: int) -> int:
        return owner % self.num_shards

    def next(self) -> Optional[Tuple[ClientId, ClientId, int]]:
        """Next operation, or ``None`` for a Balance read."""
        kind = self._rng.choices(self._types, weights=self._weights, k=1)[0]
        if kind == "balance":
            self.balance_queries += 1
            return None
        self.total_writes += 1
        owner = self._owner()
        if kind == "transact_savings":
            return checking(owner), savings(owner), self._amount()
        if kind == "deposit_checking":
            return bank(self._shard_of_owner(owner)), checking(owner), self._amount()
        if kind == "write_check":
            return checking(owner), bank(self._shard_of_owner(owner)), self._amount()
        if kind == "amalgamate":
            return savings(owner), checking(owner), self._amount()
        # send_payment: possibly cross-shard
        partner = owner
        if self.num_shards > 1 and self._rng.random() < self.cross_probability:
            while self._shard_of_owner(partner) == self._shard_of_owner(owner):
                partner = self._owner()
            self.cross_shard_sent += 1
        else:
            while partner == owner or (
                self.num_shards > 1
                and self._shard_of_owner(partner) != self._shard_of_owner(owner)
            ):
                partner = self._owner()
        return checking(owner), checking(partner), self._amount()

    def next_write(self) -> Tuple[ClientId, ClientId, int]:
        """Next write operation (skipping Balance reads)."""
        while True:
            operation = self.next()
            if operation is not None:
                return operation

    @property
    def observed_cross_fraction(self) -> float:
        if self.total_writes == 0:
            return 0.0
        return self.cross_shard_sent / self.total_writes
