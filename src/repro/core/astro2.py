"""Astro II — the signature-based variant (§IV-A, Listings 6–10).

Uses the signed BRB (O(N) messages, no totality) plus the dependency
mechanism: settled payments generate signed CREDIT messages to the
beneficiary's representative; f+1 CREDITs form a dependency certificate;
certificates ride along the beneficiary's next outgoing payment and are
materialized into balance at settle time (with replay protection).
Because certificates transfer trust between shards, the same replica code
runs sharded and non-sharded deployments (§V) — sharding is configuration.

Differences from Astro I, per the paper's "Comparison" paragraph:

* an insufficiently funded payment is **rejected** at settle (Listing 9
  l.49), not queued — the representative is responsible for proving funds
  before broadcasting (it holds payments until enough certificates
  accumulate);
* settling **never credits the beneficiary directly**; only dependency
  materialization does.
"""

from __future__ import annotations

from typing import Deque, Dict, List, Optional, Set, Tuple
from collections import deque

from ..brb.batching import Batch, KeyedCoalescer
from ..brb.signed import SignedBroadcast
from ..crypto import costs
from ..crypto.keys import Keychain, KeyPair
from ..transport.interface import Transport
from .config import AstroConfig
from .dependencies import (
    CreditBundle,
    CreditMessage,
    DependencyCertificate,
    DependencyCollector,
    verify_certificate,
)
from .directory import Directory
from .interning import ClientInterner
from .payment import ClientId, Payment, PaymentId
from .replica import AstroReplicaBase

__all__ = ["Astro2Replica"]


def _credit_weight(message: CreditMessage) -> int:
    """Weight of one buffered CREDIT against the transport window's size
    cap: its payment count, so the cap bounds bundle wire size."""
    return len(message.payments)


class Astro2Replica(AstroReplicaBase):
    """One Astro II replica: signed BRB + dependency-based settlement."""

    def __init__(
        self,
        transport: Transport,
        config: AstroConfig,
        genesis: Dict[ClientId, int],
        directory: Directory,
        keychain: Keychain,
        key: KeyPair,
        interner: Optional[ClientInterner] = None,
    ) -> None:
        super().__init__(transport, config, genesis, directory, interner)
        self.keychain = keychain
        self.key = key
        node_id = transport.node_id
        self.shard_id = directory.shard_of_replica(node_id)
        peers = list(directory.members(self.shard_id))
        self.brb = SignedBroadcast(
            transport,
            peers,
            self._on_brb_deliver,
            keychain,
            key,
            f=config.f,
            ack_guard=self._ack_guard,
            resend_acks=config.brb_resend_acks,
        )
        # --- representative-side state (Listings 7, 10) ---
        self._collector = DependencyCollector(directory, keychain, node_id)
        #: Accumulated, not-yet-attached certificates per represented client.
        self._deps: Dict[ClientId, List[DependencyCertificate]] = {}
        #: Optimistic balance view used to decide when a client's payment
        #: can be broadcast (settled balance ± in-flight effects),
        #: *including* certificates not yet attached.
        self._projected: Dict[ClientId, int] = {
            client: genesis.get(client, 0)
            for client in genesis
            if directory.rep_of(client) == node_id
        }
        #: Like ``_projected`` but counting only value already attached or
        #: settled — what the replicas would accept without further
        #: certificates.  Drives lazy dependency attachment.
        self._attached_projection: Dict[ClientId, int] = dict(self._projected)
        #: Payments held until the projected balance covers them.
        self._held: Dict[ClientId, Deque[Payment]] = {}
        # --- replica-side state (Listings 6, 9) ---
        #: Payment-identifier conflict log backing the ACK guard.
        self._seen_payments: Dict[PaymentId, tuple] = {}
        #: usedDeps (Listing 9 l.39): materialized dependency ids per client.
        self._used_deps: Dict[ClientId, Set[PaymentId]] = {}
        #: Sub-batch certificates already verified on this replica, keyed
        #: by (shard, sub-batch digest).  One verification covers every
        #: payment of the sub-batch — the point of 2-level batching
        #: (§VI-A): signature work is per sub-batch, not per payment.
        self._verified_certs: Set[Tuple[int, int]] = set()
        #: Payments settled in the current batch, pending CREDIT fan-out.
        self._credit_buffer: List[Payment] = []
        #: Cross-delivery CREDIT coalescer (``credit_coalesce_delay`` > 0):
        #: a *transport* window.  Sub-batches are still cut per delivery —
        #: their composition is a pure function of the origin's batch
        #: stream, so every settler signs bit-identical digests and the
        #: collector's f+1 matching rule is unaffected — but the signed
        #: :class:`CreditMessage`s accumulate per beneficiary
        #: representative across deliveries and one :class:`CreditBundle`
        #: per (this replica → representative) pair per window replaces up
        #: to ``N·window/batch_window`` unicasts.  Buckets are weighed by
        #: payment count so the size cap still bounds wire bytes.  ``None``
        #: keeps the per-delivery flush of Listing 9 byte-for-byte.
        self._credit_coalescer: Optional[KeyedCoalescer[CreditMessage]] = None
        if config.credit_coalesce_delay > 0:
            self._credit_coalescer = KeyedCoalescer(
                transport.clock,
                self._flush_credit_window,
                max_size=config.batch_size,
                max_delay=config.credit_coalesce_delay,
                weight_fn=_credit_weight,
            )
        #: Per-shard verify-cost bound for sub-batch certificates: a valid
        #: certificate carries at most ``f_shard + 1`` signatures of *its*
        #: shard (oversized ones are rejected by ``verify_certificate``
        #: after an O(1) length check), so charged CPU never scales with
        #: an attacker-sized signature tuple — and with heterogeneous
        #: shard sizes each certificate is priced by its own shard's
        #: bound, not this shard's.
        self._cert_sig_bounds: Dict[int, int] = {}
        self.on(CreditMessage, self._on_credit)
        self.on(CreditBundle, self._on_credit_bundle)

    # ------------------------------------------------------------------
    # ACK guard — Listing 6's conflict check, on payment identifiers
    # ------------------------------------------------------------------
    def _ack_guard(self, origin: int, seq: int, batch: Batch) -> bool:
        """Refuse to ACK a batch containing an equivocating payment.

        Quorum intersection then guarantees that of two conflicting
        payments (same identifier, different content) at most one can ever
        gather a commit certificate — Astro's double-spend prevention.
        """
        rep_get = self._rep_map.get
        seen = self._seen_payments
        for payment in batch.items:
            if rep_get(payment.spender) != origin:
                return False
            previous = seen.get(payment.identifier)
            if previous is not None and previous != payment.core:
                return False
        for payment in batch.items:
            seen[payment.identifier] = payment.core
        return True

    # ------------------------------------------------------------------
    # Representative side: holding, dependency attachment (Listing 7)
    # ------------------------------------------------------------------
    def _prepare_outgoing(self, payment: Payment) -> Optional[Payment]:
        spender = payment.spender
        held = self._held.get(spender)
        if held:
            # Preserve the client's FIFO order behind already-held payments.
            held.append(payment)
            return None
        projected = self._projected.get(spender, 0)
        if projected < payment.amount:
            self._held.setdefault(spender, deque()).append(payment)
            return None
        self._projected[spender] = projected - payment.amount
        return self._attach_deps(payment)

    def _attach_deps(self, payment: Payment) -> Payment:
        """Attach accumulated certificates — lazily.

        Listing 7 attaches ``deps[Alice]`` on every outgoing payment; we
        attach only when the client's already-provable balance cannot
        cover the amount, and then attach *everything* accumulated.  This
        amortizes certificate wire size and verification over many
        payments (in the spirit of §VI-A's batching) and changes nothing
        semantically: a certificate is only needed to prove funds the
        replicas have not yet seen materialized.
        """
        spender = payment.spender
        attached = self._attached_projection.get(spender, 0)
        if attached >= payment.amount:
            self._attached_projection[spender] = attached - payment.amount
            return payment
        certs = self._deps.pop(spender, None)
        if not certs:
            # Nothing to attach; the hold logic (``_projected``) should
            # have prevented this path, but a Byzantine client bypassing
            # it simply gets its payment rejected at settle.
            self._attached_projection[spender] = attached - payment.amount
            return payment
        gained = sum(cert.amount for cert in certs)
        self._attached_projection[spender] = attached + gained - payment.amount
        return Payment(
            spender,
            payment.seq,
            payment.beneficiary,
            payment.amount,
            deps=tuple(certs),
            submitted_at=payment.submitted_at,
        )

    def _release_held(self, client: ClientId) -> None:
        held = self._held.get(client)
        if not held:
            return
        while held and self._projected.get(client, 0) >= held[0].amount:
            payment = held.popleft()
            self._projected[client] = self._projected.get(client, 0) - payment.amount
            self.batcher.add(self._attach_deps(payment))
        if not held:
            self._held.pop(client, None)

    # ------------------------------------------------------------------
    # Broadcast / delivery
    # ------------------------------------------------------------------
    def _cert_sig_bound(self, shard_id: int) -> int:
        """Honest signature count for a certificate of ``shard_id``.

        ``f_shard + 1``, memoized per shard (a registered shard's
        membership is static).  An unknown shard bounds at 0 —
        ``verify_certificate`` rejects it after one O(1) directory lookup
        without examining any signature — and is *not* cached, so a
        reconfiguration registering the shard later prices it correctly.
        """
        bound = self._cert_sig_bounds.get(shard_id)
        if bound is None:
            try:
                bound = self.directory.faulty_bound(shard_id) + 1
            except KeyError:
                return 0
            self._cert_sig_bounds[shard_id] = bound
        return bound

    def _do_broadcast(self, seq: int, batch: Batch) -> None:
        self.brb.broadcast(seq, batch, batch.size_bytes)

    def _on_brb_deliver(self, origin: int, seq: int, batch: Batch) -> None:
        if self._wal is not None and not self._wal_deliver(origin, seq, batch):
            return  # duplicate: replayed, imported, or redelivered frame
        # Charge verification of attached dependency certificates once per
        # *sub-batch* certificate (f+1 signatures each) — verification,
        # like signing, is amortized by the 2-level batching scheme.
        verify_cost = 0.0
        charged: Set[Tuple[int, int]] = set()
        sig_bound = self._cert_sig_bound
        for payment in batch:
            for cert in payment.deps:
                key = (cert.shard_id, cert.subbatch_digest)
                if key not in self._verified_certs and key not in charged:
                    charged.add(key)
                    # Clamp at the *certificate's* shard bound: an
                    # attacker-padded signature tuple is rejected by
                    # verify_certificate's length check before any
                    # signature is examined, so it cannot occupy more CPU
                    # than an honest certificate of that shard.
                    sigs = len(cert.signatures)
                    bound = sig_bound(cert.shard_id)
                    if sigs > bound:
                        sigs = bound
                    verify_cost += costs.ECDSA_VERIFY * sigs
        if verify_cost:
            self.charge(verify_cost)
        self._deliver_batch(origin, batch)
        coalescer = self._credit_coalescer
        if coalescer is None:
            self._flush_credits()
        elif self._credit_buffer:
            # Transport coalescing: cut and sign this delivery's
            # sub-batches exactly like the per-delivery flush (identical
            # content and CPU at every settler), but stage the non-self
            # messages into the per-representative windows instead of
            # unicasting each right away.
            settled, self._credit_buffer = self._credit_buffer, []
            add = coalescer.add
            for rep_node, payments in self._credit_groups(settled).items():
                message = self._sign_subbatch(payments)
                if rep_node == self.node_id:
                    self._apply_credit(self.node_id, message)
                else:
                    add(rep_node, message)
        if self._wal is not None:
            self._wal_checkpoint()

    # ------------------------------------------------------------------
    # Settlement (Listings 8–9)
    # ------------------------------------------------------------------
    #: Astro II approval waits only on the sequence number (Listing 8);
    #: the funds decision happens inside settle and never blocks, so the
    #: drain loop skips the per-payment approval call.
    _approval_is_trivial = True

    def _approve_funds(self, payment: Payment) -> bool:
        return True

    def _settle(self, payment: Payment) -> Optional[ClientId]:
        spender = payment.spender
        if payment.deps:
            used = self._used_deps.get(spender)
            if used is None:
                used = self._used_deps[spender] = set()
            # Materialize never-seen-before dependencies (Listing 9 l.44-48).
            for cert in payment.deps:
                if cert.beneficiary != spender:
                    continue
                if cert.dep_id in used:
                    continue  # replay: each certificate credits at most once
                if not self._cert_valid(cert):
                    continue
                used.add(cert.dep_id)
                self.state.credit(spender, cert.amount)
        # Funds check + spend in one pass on the int64 slabs (one
        # interner lookup per payment) — Astro II's hottest code.
        if not self.state.try_settle_spend(payment):
            # Listing 9 l.49: an underfunded payment is dropped without
            # advancing sn.  Correct representatives prove funds before
            # broadcasting, so this fires only under faulty clients/reps.
            self.rejected.append(payment)
            return None
        self.settled_count += 1
        self._credit_buffer.append(payment)
        if self._rep_map.get(spender) == self.node_id:
            self._confirm(payment)
        return None  # no direct deposit — nothing new to re-examine

    def _cert_valid(self, cert: DependencyCertificate) -> bool:
        key = (cert.shard_id, cert.subbatch_digest)
        if key in self._verified_certs:
            # The sub-batch is already proven settled by f+1 replicas of
            # its shard; only this payment's membership needs checking.
            return cert.payment in cert.subbatch
        if verify_certificate(cert, self.directory, self.keychain):
            self._verified_certs.add(key)
            return True
        return False

    # ------------------------------------------------------------------
    # CREDIT fan-out (Listing 9 l.55-57, 2-level batching §VI-A)
    # ------------------------------------------------------------------
    def _credit_groups(self, settled: List[Payment]) -> Dict[int, List[Payment]]:
        """One delivery's sub-batches, keyed by beneficiary representative.

        Inlined group_by_representative: one dict lookup per payment
        instead of a lambda plus a method call.  Insertion-ordered, so
        sub-batch content and emission order are pure functions of the
        settle order.
        """
        rep_get = self._rep_map.get
        groups: Dict[int, List[Payment]] = {}
        for payment in settled:
            rep_node = rep_get(payment.beneficiary)
            bucket = groups.get(rep_node)
            if bucket is None:
                groups[rep_node] = [payment]
            else:
                bucket.append(payment)
        return groups

    def _flush_credits(self) -> None:
        if not self._credit_buffer:
            return
        settled, self._credit_buffer = self._credit_buffer, []
        for rep_node, payments in self._credit_groups(settled).items():
            self._emit_credit(rep_node, payments)

    def _flush_credit_window(
        self, rep_node: int, messages: List[CreditMessage]
    ) -> None:
        """Coalescer flush: one window's buffered CREDITs, one envelope.

        The sub-batches inside were signed at their own delivery times;
        the bundle only amortizes per-message network and CPU overhead.
        """
        if not self.alive:
            # A window may expire after this replica crashed; a crashed
            # replica sends nothing (the network would also drop a dead
            # source, but skipping avoids building the bundle at all).
            return
        self._send_credits(rep_node, messages)

    def _sign_subbatch(self, payments: List[Payment]) -> CreditMessage:
        """Sign one per-delivery sub-batch.

        One signature per sub-batch is the whole point of the second
        batching level (§VI-A); transport coalescing never changes how
        many sub-batches are signed, only how they ship.
        """
        self.charge(costs.ECDSA_SIGN)
        return CreditMessage.create(self.key, self.shard_id, tuple(payments))

    def _send_credits(
        self, rep_node: int, messages: List[CreditMessage]
    ) -> None:
        """Unicast one or more signed sub-batches as one network message.

        The receiver verifies each sub-batch's signature individually
        (they feed separate certificates), so only the envelope terms —
        one message overhead, one send — amortize across the bundle.
        """
        if len(messages) == 1:
            payload: object = messages[0]
            size = messages[0].size
        else:
            payload = CreditBundle(tuple(messages))
            size = payload.size
        recv_cost = (
            costs.MESSAGE_OVERHEAD
            + costs.PER_BYTE_CPU * size
            + costs.ECDSA_VERIFY * len(messages)
        )
        self.send(
            rep_node,
            payload,
            size=size,
            recv_cost=recv_cost,
            send_cost=costs.SEND_OVERHEAD,
        )

    def _emit_credit(self, rep_node: int, payments: List[Payment]) -> None:
        message = self._sign_subbatch(payments)
        if rep_node == self.node_id:
            self._apply_credit(self.node_id, message)
        else:
            self._send_credits(rep_node, [message])

    def _on_credit(self, src: int, message: CreditMessage) -> None:
        if self._wal is not None:
            # Durable before applied.  Only *remote* CREDITs are logged:
            # self-credits are regenerated deterministically when the
            # delivery that produced them is replayed.
            self._wal.record(("credit", src, message))
        self._apply_credit(src, message)

    def _on_credit_bundle(self, src: int, bundle: CreditBundle) -> None:
        if self._wal is not None:
            for message in bundle.messages:
                self._wal.record(("credit", src, message))
        for message in bundle.messages:
            self._apply_credit(src, message)

    def _apply_credit(self, src: int, message: CreditMessage) -> None:
        certs = self._collector.add_credit(src, message)
        if not certs:
            return
        deps = self._deps
        projected = self._projected
        held = self._held
        for cert in certs:
            payment = cert.payment
            beneficiary = payment.beneficiary
            bucket = deps.get(beneficiary)
            if bucket is None:
                deps[beneficiary] = [cert]
            else:
                bucket.append(cert)
            projected[beneficiary] = projected.get(beneficiary, 0) + payment.amount
            if beneficiary in held:
                self._release_held(beneficiary)

    # ------------------------------------------------------------------
    # Durable state & crash recovery (live cluster only)
    # ------------------------------------------------------------------
    def _replay_record(self, record) -> None:
        if record[0] == "credit":
            self._apply_credit(record[1], record[2])
        else:
            super()._replay_record(record)

    def _snapshot_data(self):
        data = super()._snapshot_data()
        # Representative- and replica-side Astro II state that WAL replay
        # alone cannot reconstruct (CREDIT aggregation is cumulative).
        # Everything here pickles via the compact ``__reduce__`` wire
        # encodings already used cross-process by the sharded simulator.
        data["deps"] = {c: list(certs) for c, certs in self._deps.items()}
        data["projected"] = dict(self._projected)
        data["attached_projection"] = dict(self._attached_projection)
        data["held"] = {c: list(q) for c, q in self._held.items()}
        data["collector"] = self._collector
        data["seen_payments"] = dict(self._seen_payments)
        data["used_deps"] = {c: set(s) for c, s in self._used_deps.items()}
        data["verified_certs"] = set(self._verified_certs)
        return data

    def _restore_snapshot(self, data) -> None:
        super()._restore_snapshot(data)
        self._deps = {c: list(certs) for c, certs in data["deps"].items()}
        self._projected = dict(data["projected"])
        self._attached_projection = dict(data["attached_projection"])
        self._held = {c: deque(q) for c, q in data["held"].items()}
        self._collector = data["collector"]
        self._seen_payments = dict(data["seen_payments"])
        self._used_deps = {c: set(s) for c, s in data["used_deps"].items()}
        self._verified_certs = set(data["verified_certs"])

    def _finish_recovery(self) -> None:
        super()._finish_recovery()
        # Rebuild the ACK-guard conflict log from every payment this
        # replica durably knows: payments ACKed between the last WAL
        # record and the crash are unavoidably forgotten, but quorum
        # intersection still protects safety globally (2f+1 ACKs need
        # f+1 correct replicas, and at most this one is amnesiac).
        seen = self._seen_payments
        for log in self.state.xlogs.values():
            for payment in log._entries:
                seen.setdefault(payment.identifier, payment.core)
        for queue in self._awaiting_seq.values():
            for payment in queue.values():
                seen.setdefault(payment.identifier, payment.core)
        for batch in self._launched_pending.values():
            for payment in batch.items:
                seen.setdefault(payment.identifier, payment.core)
        # ``_projected`` may over-state after a crash (ingest-time debits
        # between the last snapshot and the crash are not logged).  That
        # is the safe direction for safety — an over-projected payment is
        # rejected at settle (Listing 9 l.49) without advancing sn.

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def available_balance(self, client: ClientId) -> int:
        """Representative's view: settled balance + pending certificates.

        What a client of this representative could spend right now.
        """
        pending = sum(cert.amount for cert in self._deps.get(client, ()))
        return self.state.balance(client) + pending

    @property
    def held_payments(self) -> int:
        return sum(len(queue) for queue in self._held.values())
