"""System assembly: wire replicas, clients, and the network together.

These classes are the primary public entry points of the library:

* :class:`Astro1System` — full replication, Bracha BRB (Astro I);
* :class:`Astro2System` — signed BRB with dependency certificates,
  optionally sharded (Astro II, §V).

Both expose the same driving surface (``submit`` / ``add_client_node`` /
``settle_all`` / state introspection) so workloads and benchmarks are
generic over the variant.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

from ..crypto.keys import Keychain, replica_owner
from ..sim.events import Simulator
from ..sim.faults import FaultInjector
from ..sim.latency import LatencyModel, europe_wan
from ..sim.network import Network
from ..sim.node import Node
from .astro1 import Astro1Replica
from .astro2 import Astro2Replica
from .client import ClientNode, ConfirmCallback
from .config import AstroConfig
from .directory import Directory
from .interning import ClientInterner
from .payment import ClientId, Payment
from .replica import AstroReplicaBase

__all__ = ["Astro1System", "Astro2System"]


class _AstroSystemBase:
    """Construction and driving logic shared by both variants."""

    def __init__(
        self,
        genesis: Mapping[ClientId, int],
        config: AstroConfig,
        total_replicas: int,
        sim: Optional[Simulator],
        network: Optional[Network],
        latency: Optional[LatencyModel],
        seed: int,
        track_kinds: bool,
    ) -> None:
        self.sim = sim if sim is not None else Simulator()
        self.config = config
        self.genesis: Dict[ClientId, int] = dict(genesis)
        if network is None:
            if latency is None:
                latency = europe_wan(total_replicas, seed=seed)
            network = Network(self.sim, latency=latency, track_kinds=track_kinds)
        self.network = network
        self.faults = FaultInjector(self.sim, self.network)
        self.directory = Directory()
        #: Cached client → representative dict (stable object, hot path).
        self._rep_map = self.directory.rep_map
        #: Lazily filled client → representative *replica object* cache;
        #: representatives never change after registration, only new
        #: clients appear (which simply miss once).
        self._rep_replica: Dict[ClientId, AstroReplicaBase] = {}
        self.replicas: List[AstroReplicaBase] = []
        self._replica_by_node: Dict[int, AstroReplicaBase] = {}
        self._next_seq: Dict[ClientId, int] = {}
        self._next_client_node = total_replicas

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _sorted_clients(self) -> List[ClientId]:
        return sorted(self.genesis, key=repr)

    def _register(self, replica: AstroReplicaBase) -> None:
        self.replicas.append(replica)
        self._replica_by_node[replica.node_id] = replica

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def next_seq(self, client: ClientId) -> int:
        """Allocate the client's next sequence number (Listing 1 l.6)."""
        seq = self._next_seq.get(client, 0) + 1
        self._next_seq[client] = seq
        return seq

    def make_payment(
        self, spender: ClientId, beneficiary: ClientId, amount: int
    ) -> Payment:
        return Payment(
            spender,
            self.next_seq(spender),
            beneficiary,
            amount,
            submitted_at=self.sim.now,
        )

    def submit(self, spender: ClientId, beneficiary: ClientId, amount: int) -> Payment:
        """Create and inject a payment at the spender's representative.

        Equivalent to ``submit_payment(make_payment(...))`` with the
        intermediate calls inlined — load drivers call this once per
        injected payment.
        """
        seqs = self._next_seq
        seq = seqs.get(spender, 0) + 1
        seqs[spender] = seq
        payment = Payment(
            spender, seq, beneficiary, amount, submitted_at=self.sim.now
        )
        replica = self._rep_replica.get(spender)
        if replica is None:
            replica = self._rep_replica[spender] = self._replica_by_node[
                self._rep_map[spender]
            ]
        replica.submit_local(payment)
        return payment

    def submit_payment(self, payment: Payment) -> None:
        representative = self.directory.rep_of(payment.spender)
        self._replica_by_node[representative].submit_local(payment)

    def add_client_node(
        self, client: ClientId, on_confirm: Optional[ConfirmCallback] = None
    ) -> ClientNode:
        """Run ``client`` as a real simulated process (closed-loop driving)."""
        representative = self.directory.rep_of(client)
        node_id = self._next_client_node
        self._next_client_node += 1
        node = ClientNode(
            self.sim,
            node_id,
            client,
            self.network,
            representative,
            self.config,
            on_confirm=on_confirm,
        )
        self._replica_by_node[representative].client_nodes[client] = node_id
        return node

    def add_confirm_hook(self, hook: Callable[[Payment, float], None]) -> None:
        """Observe settlements at each spender's representative."""
        for replica in self.replicas:
            replica.confirm_hooks.append(hook)

    def remove_confirm_hook(self, hook: Callable[[Payment, float], None]) -> None:
        """Detach a hook added by :meth:`add_confirm_hook` (idempotent)."""
        for replica in self.replicas:
            try:
                replica.confirm_hooks.remove(hook)
            except ValueError:
                pass

    def settle_all(self, max_events: int = 50_000_000) -> None:
        """Run the simulation until no events remain (quiescence)."""
        self.sim.run_until_idle(max_events=max_events)

    def run(self, until: float) -> None:
        self.sim.run(until=until)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def replica_node_ids(self) -> List[int]:
        """Node ids of all replicas, ascending.

        The partitioning domain of the sharded engine
        (:mod:`repro.sim.shard`): every replica is owned by exactly one
        shard worker; clients drive the system through :meth:`submit`
        and are not separate nodes in open-loop runs.
        """
        return sorted(self._replica_by_node)

    def replica(self, index: int) -> AstroReplicaBase:
        return self.replicas[index]

    def replica_by_node(self, node_id: int) -> AstroReplicaBase:
        return self._replica_by_node[node_id]

    def representative_of(self, client: ClientId) -> AstroReplicaBase:
        return self._replica_by_node[self.directory.rep_of(client)]

    def settled_counts(self) -> List[int]:
        return [replica.settled_count for replica in self.replicas]

    def balances_at(self, index: int = 0) -> Dict[ClientId, int]:
        return dict(self.replicas[index].state.balances)


class Astro1System(_AstroSystemBase):
    """Astro I deployment: N replicas, full replication, Bracha BRB."""

    def __init__(
        self,
        num_replicas: int = 4,
        genesis: Optional[Mapping[ClientId, int]] = None,
        config: Optional[AstroConfig] = None,
        sim: Optional[Simulator] = None,
        network: Optional[Network] = None,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        track_kinds: bool = False,
        rep_assignment: Optional[Mapping[ClientId, int]] = None,
    ) -> None:
        if config is None:
            config = AstroConfig(num_replicas=num_replicas)
        if config.num_shards != 1:
            raise ValueError("Astro I does not support sharding (§IV-A)")
        super().__init__(
            genesis if genesis is not None else {},
            config,
            config.num_replicas,
            sim,
            network,
            latency,
            seed,
            track_kinds,
        )
        members = tuple(range(config.num_replicas))
        self.directory.register_shard(0, members)
        clients = self._sorted_clients()
        for position, client in enumerate(clients):
            if rep_assignment is not None:
                representative = rep_assignment[client]
            else:
                representative = members[position % len(members)]
            self.directory.register_client(client, representative)
        # One ClientId ⇄ index interner for all replicas: their account
        # slabs share the per-client mapping cost.
        interner = ClientInterner(self.genesis)
        for node_id in members:
            # The simulator Node is the replica's transport backend; the
            # replica itself is a plain protocol object (the same object
            # runs over repro.transport.tcp in a live cluster).
            transport = Node(self.sim, node_id, self.network)
            self._register(
                Astro1Replica(
                    transport,
                    config,
                    dict(self.genesis),
                    self.directory,
                    list(members),
                    interner=interner,
                )
            )

    def total_value(self, index: int = 0) -> int:
        """Sum of balances at one replica (conserved in Astro I)."""
        return self.replicas[index].state.total_balance()


class Astro2System(_AstroSystemBase):
    """Astro II deployment: ``num_shards`` shards of ``num_replicas`` each.

    ``config.num_replicas`` is the *per-shard* size, matching the paper's
    "each shard consists of N = 52 replicas" (§VI-C2).  With one shard
    this is exactly the non-sharded Astro II of §IV.
    """

    def __init__(
        self,
        num_replicas: int = 4,
        num_shards: int = 1,
        genesis: Optional[Mapping[ClientId, int]] = None,
        config: Optional[AstroConfig] = None,
        sim: Optional[Simulator] = None,
        network: Optional[Network] = None,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        track_kinds: bool = False,
        keychain: Optional[Keychain] = None,
        rep_assignment: Optional[Mapping[ClientId, int]] = None,
        shard_assignment: Optional[Mapping[ClientId, int]] = None,
    ) -> None:
        if config is None:
            config = AstroConfig(num_replicas=num_replicas, num_shards=num_shards)
        total = config.num_replicas * config.num_shards
        super().__init__(
            genesis if genesis is not None else {},
            config,
            total,
            sim,
            network,
            latency,
            seed,
            track_kinds,
        )
        self.keychain = keychain if keychain is not None else Keychain(seed=seed + 17)
        per_shard = config.num_replicas
        for shard in range(config.num_shards):
            members = tuple(range(shard * per_shard, (shard + 1) * per_shard))
            self.directory.register_shard(shard, members)
        clients = self._sorted_clients()
        for position, client in enumerate(clients):
            if rep_assignment is not None:
                representative = rep_assignment[client]
            else:
                if shard_assignment is not None:
                    shard = shard_assignment[client]
                else:
                    shard = position % config.num_shards
                members = self.directory.members(shard)
                representative = members[(position // config.num_shards) % len(members)]
            self.directory.register_client(client, representative)
        for shard in range(config.num_shards):
            shard_clients = set(self.directory.clients_of_shard(shard))
            shard_genesis = {
                client: amount
                for client, amount in self.genesis.items()
                if client in shard_clients
            }
            # Replicas of one shard share identical genesis, so they
            # share one interner (cross-shard ids are interned lazily).
            interner = ClientInterner(shard_genesis)
            for node_id in self.directory.members(shard):
                key = self.keychain.generate(replica_owner(node_id))
                transport = Node(self.sim, node_id, self.network)
                self._register(
                    Astro2Replica(
                        transport,
                        config,
                        dict(shard_genesis),
                        self.directory,
                        self.keychain,
                        key,
                        interner=interner,
                    )
                )

    # ------------------------------------------------------------------
    # Value accounting (tests / invariants)
    # ------------------------------------------------------------------
    def total_value(self) -> int:
        """Global conserved value, from one reference replica per shard.

        In Astro II a settled payment's value lives in limbo between the
        spender's debit and the beneficiary's materialization; the total is
        Σ balances + Σ amounts of settled-but-unmaterialized payments.
        """
        reference: Dict[int, Astro2Replica] = {
            shard: self._replica_by_node[self.directory.members(shard)[0]]
            for shard in self.directory.shard_ids
        }
        total = 0
        outstanding = 0
        for shard, replica in reference.items():
            total += replica.state.total_balance()
            for xlog in replica.state.xlogs.values():
                for payment in xlog:
                    beneficiary = payment.beneficiary
                    ben_shard = self.directory.shard_of_client(beneficiary)
                    ben_replica = reference[ben_shard]
                    used = ben_replica._used_deps.get(beneficiary, ())
                    if payment.identifier not in used:
                        outstanding += payment.amount
        return total + outstanding
