"""Astro I — the echo-based variant (§IV-A).

Uses Bracha's BRB (MAC-authenticated, O(N²) messages, totality) and the
plain payment protocol of Listings 1–4: settling credits the beneficiary
directly, and insufficiently funded payments are *queued*, never rejected
("Astro I does not reject insufficiently funded transactions ... it queues
them until enough funds arrive", §IV-A Comparison).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..brb.batching import Batch
from ..brb.bracha import BrachaBroadcast
from ..transport.interface import Transport
from .config import AstroConfig
from .directory import Directory
from .interning import ClientInterner
from .payment import ClientId, Payment
from .replica import AstroReplicaBase

__all__ = ["Astro1Replica"]


class Astro1Replica(AstroReplicaBase):
    """One Astro I replica: Bracha BRB + full-settle payment protocol."""

    def __init__(
        self,
        transport: Transport,
        config: AstroConfig,
        genesis: Dict[ClientId, int],
        directory: Directory,
        peers: List[int],
        interner: Optional[ClientInterner] = None,
    ) -> None:
        super().__init__(transport, config, genesis, directory, interner)
        self.brb = BrachaBroadcast(
            transport, peers, self._on_brb_deliver, f=config.f, fifo=True
        )

    # ------------------------------------------------------------------
    # Variant hooks
    # ------------------------------------------------------------------
    def _do_broadcast(self, seq: int, batch: Batch) -> None:
        self.brb.broadcast(seq, batch, batch.size_bytes)

    def _on_brb_deliver(self, origin: int, seq: int, batch: Batch) -> None:
        if self._wal is not None:
            if not self._wal_deliver(origin, seq, batch):
                return
            self._deliver_batch(origin, batch)
            self._wal_checkpoint()
            return
        self._deliver_batch(origin, batch)

    def _approve_funds(self, payment: Payment) -> bool:
        # Criterion (2) of Listing 3: the balance must cover the amount.
        # When it does not, the caller leaves the payment queued; a later
        # settle crediting this client re-runs the check (totality of
        # Bracha's BRB guarantees the credit eventually arrives).
        return self.state.balance(payment.spender) >= payment.amount

    def _settle(self, payment: Payment) -> Optional[ClientId]:
        # Listing 4: withdraw, deposit, bump sn, append to the xlog.
        # settle_full works directly on the int64 slabs — two interner
        # lookups plus C array ops per payment, no per-client PyObjects.
        self.state.settle_full(payment)
        self.settled_count += 1
        spender = payment.spender
        if self._rep_map.get(spender) == self.node_id:
            self._confirm(payment)
        return payment.beneficiary
