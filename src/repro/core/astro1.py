"""Astro I — the echo-based variant (§IV-A).

Uses Bracha's BRB (MAC-authenticated, O(N²) messages, totality) and the
plain payment protocol of Listings 1–4: settling credits the beneficiary
directly, and insufficiently funded payments are *queued*, never rejected
("Astro I does not reject insufficiently funded transactions ... it queues
them until enough funds arrive", §IV-A Comparison).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..brb.batching import Batch
from ..brb.bracha import BrachaBroadcast
from ..transport.interface import Transport
from .config import AstroConfig
from .directory import Directory
from .payment import ClientId, Payment
from .replica import AstroReplicaBase
from .xlog import ExclusiveLog

__all__ = ["Astro1Replica"]


class Astro1Replica(AstroReplicaBase):
    """One Astro I replica: Bracha BRB + full-settle payment protocol."""

    def __init__(
        self,
        transport: Transport,
        config: AstroConfig,
        genesis: Dict[ClientId, int],
        directory: Directory,
        peers: List[int],
    ) -> None:
        super().__init__(transport, config, genesis, directory)
        self.brb = BrachaBroadcast(
            transport, peers, self._on_brb_deliver, f=config.f, fifo=True
        )

    # ------------------------------------------------------------------
    # Variant hooks
    # ------------------------------------------------------------------
    def _do_broadcast(self, seq: int, batch: Batch) -> None:
        self.brb.broadcast(seq, batch, batch.size_bytes)

    def _on_brb_deliver(self, origin: int, seq: int, batch: Batch) -> None:
        if self._wal is not None:
            if not self._wal_deliver(origin, seq, batch):
                return
            self._deliver_batch(origin, batch)
            self._wal_checkpoint()
            return
        self._deliver_batch(origin, batch)

    def _approve_funds(self, payment: Payment) -> bool:
        # Criterion (2) of Listing 3: the balance must cover the amount.
        # When it does not, the caller leaves the payment queued; a later
        # settle crediting this client re-runs the check (totality of
        # Bracha's BRB guarantees the credit eventually arrives).
        return self.state.balance(payment.spender) >= payment.amount

    def _settle(self, payment: Payment) -> Optional[ClientId]:
        # Listing 4: withdraw, deposit, bump sn, append to the xlog.
        # Hand-inlined state.settle_full — this runs once per payment per
        # replica and is the hottest code in Astro I.
        state = self.state
        balances = state.balances
        spender = payment.spender
        beneficiary = payment.beneficiary
        amount = payment.amount
        balances[spender] = balances.get(spender, 0) - amount
        balances[beneficiary] = balances.get(beneficiary, 0) + amount
        state.seqnums[spender] = state.seqnums.get(spender, 0) + 1
        xlogs = state.xlogs
        log = xlogs.get(spender)
        if log is None:
            log = xlogs[spender] = ExclusiveLog(spender)
        # seq == len(xlog)+1 is guaranteed by the drain loop's gap queue
        # (seqnum and xlog length move in lockstep), so the append-time
        # re-validation of ExclusiveLog.append is skipped here.
        log._entries.append(payment)
        self.settled_count += 1
        if self._rep_map.get(spender) == self.node_id:
            self._confirm(payment)
        return beneficiary
