"""Client-id interning: ClientId ⇄ dense int index, insertion-ordered.

The array-backed :class:`~repro.core.accounts.AccountState` stores
balances and sequence numbers in flat ``array('q')`` slabs indexed by a
small integer per client.  This module owns that mapping.  One
:class:`ClientInterner` is typically *shared* by every replica of a
system (they all start from the same genesis), so the per-client mapping
cost — the ``dict`` entry and the id string itself — is paid once per
process instead of once per replica.

Determinism: indices are assigned in first-intern order and never
change, and iteration over :meth:`clients` follows that same insertion
order.  Nothing here depends on the interpreter hash seed — dict
insertion order is the only ordering used.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .payment import ClientId

__all__ = ["ClientInterner"]


class ClientInterner:
    """Bidirectional ClientId ⇄ dense index map, insertion-ordered."""

    __slots__ = ("_index", "_clients")

    def __init__(self, clients: Iterable[ClientId] = ()) -> None:
        self._index: Dict[ClientId, int] = {}
        self._clients: List[ClientId] = []
        for client in clients:
            self.intern(client)

    def intern(self, client: ClientId) -> int:
        """Return the client's index, assigning the next one if new."""
        index = self._index.get(client)
        if index is None:
            index = len(self._clients)
            self._index[client] = index
            self._clients.append(client)
        return index

    def index_of(self, client: ClientId) -> Optional[int]:
        """The client's index, or ``None`` if never interned."""
        return self._index.get(client)

    def client_at(self, index: int) -> ClientId:
        return self._clients[index]

    def __contains__(self, client: ClientId) -> bool:
        return client in self._index

    def __len__(self) -> int:
        return len(self._clients)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClientInterner len={len(self._clients)}>"
