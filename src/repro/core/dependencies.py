"""CREDIT messages and dependency certificates (§IV-A, §V, Listings 7–10).

The signed BRB of Astro II lacks totality, enabling the *partial payments
attack*: a Byzantine representative could let only some replicas settle a
payment, leaving the beneficiary unable to spend it.  Astro II compensates
with **dependencies**: every correct replica that settles a payment
unicasts a signed CREDIT to the beneficiary's representative, and f+1
distinct CREDITs form a *dependency certificate* — unforgeable proof the
payment was accepted by the spender's shard.  Certificates ride along the
beneficiary's next outgoing payment and are materialized into balance at
settle time, with replay protection (``usedDeps``).

Certificates are also what make sharding one-step (§V): replicas of the
beneficiary's shard accept a dependency signed by f+1 replicas of the
*spender's* shard, so no 2PC is needed.

Per the paper's 2-level batching (§VI-A), a CREDIT covers a *sub-batch*
(all settled payments of one batch whose beneficiaries share a
representative) under a single signature.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from ..crypto import costs
from ..crypto.hashing import Digest
from ..crypto.keys import Keychain, replica_owner
from ..crypto.signatures import Signature, sign, verify
from .directory import Directory
from .payment import ClientId, Payment, PaymentId

__all__ = [
    "CreditBundle",
    "CreditMessage",
    "DependencyCertificate",
    "DependencyCollector",
    "credit_content",
    "subbatch_digest_of",
    "verify_certificate",
    "certificate_wire_bytes",
]


_DIGEST_MASK = 0xFFFFFFFFFFFFFFFF


def credit_content(shard_id: int, subbatch_digest: Digest) -> tuple:
    """The statement a CREDIT signature endorses: 'my shard settled this
    sub-batch'."""
    return ("credit", shard_id, subbatch_digest)


def subbatch_digest_of(payments: Sequence[Payment]) -> Digest:
    """Digest of a settled sub-batch, over the payments' core fields.

    Core fields (not full canonical forms) terminate the recursion
    payment → deps → crediting payment → its deps → …; a settled payment's
    attached certificates are already consumed and are irrelevant to the
    credit it produces.

    Combines the payments' memoized core digests instead of
    re-canonicalizing every payment: two sub-batches carry the same core
    digest sequence iff they carry the same payment content in the same
    order, which preserves the collision-freedom the certificate scheme
    relies on while making re-verification O(|sub-batch|) dictionary
    lookups.
    """
    return (
        hash((
            "subbatch",
            tuple([
                cached if (cached := p._core_digest) is not None else p.core_digest()
                for p in payments
            ]),
        ))
        & _DIGEST_MASK
    )


class CreditMessage:
    """Signed approval of a settled sub-batch (Listing 9 l.55-57).

    Unicast by each settling replica to the representative of the
    sub-batch's beneficiaries.  One signature covers the whole sub-batch
    (2-level batching, §VI-A).
    """

    __slots__ = ("shard_id", "payments", "subbatch_digest", "signature", "size")

    def __init__(
        self,
        shard_id: int,
        payments: Tuple[Payment, ...],
        signature: Signature,
        subbatch_digest: Optional[Digest] = None,
    ) -> None:
        self.shard_id = shard_id
        self.payments = payments
        # The digest is derivable from ``payments``; accepting it as an
        # argument avoids recomputing an O(|sub-batch|) hash per message.
        self.subbatch_digest = (
            subbatch_digest if subbatch_digest is not None
            else subbatch_digest_of(payments)
        )
        self.signature = signature
        self.size = 48 + costs.SIGNATURE_BYTES + 100 * len(payments)

    @classmethod
    def create(
        cls, key, shard_id: int, payments: Sequence[Payment]
    ) -> "CreditMessage":
        payments = tuple(payments)
        batch_digest = subbatch_digest_of(payments)
        signature = sign(key, credit_content(shard_id, batch_digest))
        return cls(shard_id, payments, signature, subbatch_digest=batch_digest)

    def __reduce__(self):
        # Compact cross-process pickling (repro.sim.shard).  The digest
        # ships along: it is a pure function of content and the shared
        # worker hash seed, and recomputing it per copy would repeat an
        # O(|sub-batch|) hash on the receiving shard.
        return (
            CreditMessage,
            (self.shard_id, self.payments, self.signature,
             self.subbatch_digest),
        )


class CreditBundle:
    """Several :class:`CreditMessage`s shipped as one network message.

    The cross-delivery CREDIT coalescer is a *transport* window: every
    sub-batch keeps its per-delivery composition, digest, and signature
    (so each settler produces bit-identical digests and the f+1 matching
    rule of :class:`DependencyCollector` works exactly as with per-delivery
    unicasts), and only the envelopes are merged — one bundle per
    (settling replica → representative) pair per window amortizes the
    per-message network and CPU overhead.  Coalescing sub-batch *content*
    across deliveries instead would anchor sub-batch boundaries to each
    settler's local delivery times, which under pair-varying WAN latency
    slices the settled-payment stream differently at every settler:
    digests then never match and certificates stop minting.
    """

    __slots__ = ("messages", "size")

    #: Envelope framing (count + shard routing); the per-sub-batch
    #: digest/signature framing stays inside each message's own ``size``.
    HEADER_BYTES = 16

    def __init__(self, messages: Tuple[CreditMessage, ...]) -> None:
        self.messages = messages
        size = self.HEADER_BYTES
        for message in messages:
            size += message.size
        self.size = size

    def __iter__(self):
        return iter(self.messages)

    def __len__(self) -> int:
        return len(self.messages)

    def __reduce__(self):
        # Compact cross-process pickling (repro.sim.shard).
        return (CreditBundle, (self.messages,))


class DependencyCertificate:
    """f+1 signed approvals proving one incoming payment exists (§IV-A).

    ``payment`` is the crediting payment; ``subbatch`` is the sub-batch the
    signatures cover (membership of ``payment`` in it is part of
    verification); ``signatures`` are the f+1 distinct replica signatures
    over the sub-batch.
    """

    __slots__ = ("payment", "shard_id", "subbatch", "subbatch_digest",
                 "signatures", "_canonical")

    def __init__(
        self,
        payment: Payment,
        shard_id: int,
        subbatch: Tuple[Payment, ...],
        signatures: Tuple[Signature, ...],
        subbatch_digest: Optional[Digest] = None,
    ) -> None:
        self.payment = payment
        self.shard_id = shard_id
        self.subbatch = subbatch
        self.subbatch_digest = (
            subbatch_digest if subbatch_digest is not None
            else subbatch_digest_of(subbatch)
        )
        self.signatures = signatures
        self._canonical: Optional[tuple] = None

    def __reduce__(self):
        # Compact cross-process pickling (repro.sim.shard); the memoized
        # canonical form is rebuilt on demand at the receiver.
        return (
            DependencyCertificate,
            (self.payment, self.shard_id, self.subbatch, self.signatures,
             self.subbatch_digest),
        )

    @property
    def dep_id(self) -> PaymentId:
        """Identifier under which replay protection tracks this dependency."""
        return self.payment.identifier

    @property
    def amount(self) -> int:
        return self.payment.amount

    @property
    def beneficiary(self) -> ClientId:
        return self.payment.beneficiary

    @property
    def wire_bytes(self) -> int:
        """Serialized size: payment reference plus the f+1 signatures."""
        return 40 + len(self.signatures) * (costs.SIGNATURE_BYTES + 8)

    def canonical(self) -> tuple:
        value = self._canonical
        if value is None:
            value = self._canonical = (
                "depcert",
                self.shard_id,
                self.payment.core_canonical(),
                self.subbatch_digest,
                tuple(s.canonical() for s in self.signatures),
            )
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DependencyCertificate {self.payment!r} "
            f"sigs={len(self.signatures)} shard={self.shard_id}>"
        )


def verify_certificate(
    cert: DependencyCertificate, directory: Directory, keychain: Keychain
) -> bool:
    """Full validity check: signatures, signer membership, payment membership.

    A certificate is valid iff it carries f+1 *distinct* signatures by
    replicas of the claimed (spender's) shard over the sub-batch content,
    and the credited payment is a member of that sub-batch.
    """
    try:
        members = set(directory.members(cert.shard_id))
        needed = directory.faulty_bound(cert.shard_id) + 1
    except KeyError:
        return False
    # Signature-count bounds, checked before any signature is examined:
    # more than f+1 signatures can only be attacker padding (a Byzantine
    # representative inflating every verifier's CPU — f+1 distinct valid
    # signers already prove the sub-batch), and fewer than f+1 can never
    # reach the distinct-signer threshold.  O(1) rejection keeps the
    # per-certificate verify cost bounded by the honest size.
    if not (0 < len(cert.signatures) <= needed):
        return False
    if cert.payment not in cert.subbatch:
        return False
    if subbatch_digest_of(cert.subbatch) != cert.subbatch_digest:
        return False  # claimed digest does not match the carried content
    content = credit_content(cert.shard_id, cert.subbatch_digest)
    # Distinct-signer *count* only: signer identities contain strings, so
    # the set's iteration order is PYTHONHASHSEED-dependent and must never
    # leak into certificate assembly (DependencyCollector builds
    # certificates from its insertion-ordered CREDIT buckets instead).
    signers: Set[Hashable] = set()
    for signature in cert.signatures:
        if not isinstance(signature, Signature):
            return False
        owner = signature.signer
        if not (
            isinstance(owner, tuple)
            and len(owner) == 2
            and owner[0] == "replica"
            and owner[1] in members
        ):
            return False
        if not verify(keychain, signature, content):
            return False
        signers.add(owner)
    return len(signers) >= needed


def certificate_wire_bytes(f: int) -> int:
    """Wire size of one dependency attached to an outgoing payment."""
    return 40 + (f + 1) * (costs.SIGNATURE_BYTES + 8)


class DependencyCollector:
    """Representative-side CREDIT aggregation (Listing 10).

    Collects CREDIT messages per sub-batch; once f+1 distinct settling
    replicas have signed, mints a :class:`DependencyCertificate` for each
    payment in the sub-batch whose beneficiary this representative serves.
    """

    #: Default compaction bounds.  ``MAX_PENDING`` caps sub-batches still
    #: short of f+1 CREDITs (a crashed settler strands its sub-batches
    #: here forever, §VI-D); ``MAX_CERTIFIED`` caps the replay-dedup
    #: memory of already-minted sub-batches.  Both evict oldest-first
    #: from insertion-ordered dicts, so eviction order is a pure function
    #: of arrival order — never of hash-seed-dependent set internals.
    MAX_PENDING = 4096
    MAX_CERTIFIED = 65536

    def __init__(
        self,
        directory: Directory,
        keychain: Keychain,
        my_node: int,
        max_pending: int = MAX_PENDING,
        max_certified: int = MAX_CERTIFIED,
    ) -> None:
        if max_pending < 1 or max_certified < 1:
            raise ValueError("compaction bounds must be >= 1")
        self.directory = directory
        self.keychain = keychain
        self.my_node = my_node
        self.max_pending = max_pending
        self.max_certified = max_certified
        #: (shard, subbatch digest) -> settling replica -> signature
        self._partial: Dict[Tuple[int, Digest], Dict[int, Signature]] = {}
        #: Payments of finished sub-batches (kept until certified).
        self._payments: Dict[Tuple[int, Digest], Tuple[Payment, ...]] = {}
        #: Insertion-ordered (dict-as-FIFO): certified sub-batch key ->
        #: settler node ids whose CREDITs are still outstanding.
        #: Straggler CREDITs of a minted sub-batch are dropped here
        #: instead of re-minting (a re-mint would double-inflate the
        #: representative's projected balances).  An entry retires as
        #: soon as every settler has reported: no honest straggler can
        #: arrive after that, and a re-mint needs f+1 *distinct* signers
        #: while at most f Byzantine replicas can resend — so retirement
        #: is replay-safe and steady-state size tracks in-flight
        #: sub-batches only.  The FIFO cap backstops keys whose
        #: remaining settlers crashed (§VI-D); evicting one is bounded
        #: damage: if its stragglers arrive anyway, the worst case is a
        #: re-minted certificate inflating the *optimistic* projection —
        #: the over-projected payments are rejected at settle (Listing 9
        #: l.49) and settled value stays replay-protected by usedDeps.
        #: The per-key sets are never iterated (membership/discard/len
        #: only), so they cannot leak hash-seed-dependent order.
        self._certified: Dict[Tuple[int, Digest], Set[int]] = {}
        #: Eviction counters (observability / memory tests).
        self.evicted_pending = 0
        self.evicted_certified = 0
        #: Sub-batches that reached f+1 matching CREDITs (observability:
        #: certificate production must not degrade when transport-level
        #: coalescing is enabled).
        self.minted_subbatches = 0
        #: shard -> (member set, f+1) — shard membership is static for the
        #: collector's lifetime and consulted once per CREDIT message.
        self._shard_info: Dict[int, Tuple[Set[int], int]] = {}

    def _shard_lookup(self, shard: int) -> Optional[Tuple[Set[int], int]]:
        info = self._shard_info.get(shard)
        if info is None:
            try:
                members = set(self.directory.members(shard))
                needed = self.directory.faulty_bound(shard) + 1
            except KeyError:
                return None
            info = self._shard_info[shard] = (members, needed)
        return info

    def add_credit(self, src: int, message: CreditMessage) -> List[DependencyCertificate]:
        """Process one CREDIT; returns freshly minted certificates (if any)."""
        shard = message.shard_id
        info = self._shard_lookup(shard)
        if info is None:
            return []
        members, needed = info
        if src not in members:
            return []
        key = (shard, message.subbatch_digest)
        outstanding = self._certified.get(key)
        if outstanding is not None:
            # Straggler for an already-minted sub-batch: retire its slot
            # before any signature work (``src`` is transport-authentic,
            # and a settler clearing only its *own* slot early gains
            # nothing).  Once every settler has reported, the dedup
            # entry is replay-safe to drop — see ``_certified``.
            outstanding.discard(src)
            if not outstanding:
                del self._certified[key]
            return []
        content = credit_content(shard, message.subbatch_digest)
        if message.signature.signer != replica_owner(src):
            return []
        if not verify(self.keychain, message.signature, content):
            return []
        bucket = self._partial.get(key)
        if bucket is None:
            # The signature only covers the *claimed* digest; a Byzantine
            # settler can validly sign digest A while shipping payments
            # B.  Unchecked, a mismatched first arrival would poison the
            # ``_payments`` buffer: the collector would mint certificates
            # that ``verify_certificate`` rejects at settle time — *after*
            # ``_apply_credit`` permanently inflated the representative's
            # projected balances.  Validated only here, where the payload
            # is actually buffered: later arrivals' payloads are ignored
            # (their signatures endorse the digest, which already matches
            # the buffered payments), so re-hashing them per CREDIT would
            # spend O(|sub-batch|) per message for nothing.
            if subbatch_digest_of(message.payments) != message.subbatch_digest:
                return []
            bucket = self._partial[key] = {}
            self._payments[key] = message.payments
            if len(self._partial) > self.max_pending:
                self._evict_oldest_pending()
        bucket[src] = message.signature
        if len(bucket) < needed:
            return []
        remaining = set(members)
        remaining.difference_update(bucket)
        if remaining:
            self._certified[key] = remaining
            if len(self._certified) > self.max_certified:
                self._certified.pop(next(iter(self._certified)))
                self.evicted_certified += 1
        signatures = tuple(bucket.values())[:needed]
        subbatch = self._payments.pop(key)
        self._partial.pop(key, None)
        self.minted_subbatches += 1
        certificates = []
        for payment in subbatch:
            if self.directory.rep_of(payment.beneficiary) != self.my_node:
                continue
            certificates.append(
                DependencyCertificate(
                    payment, shard, subbatch, signatures,
                    subbatch_digest=key[1],
                )
            )
        return certificates

    def _evict_oldest_pending(self) -> None:
        """Drop the oldest incomplete sub-batch (GC for stranded CREDITs).

        A sub-batch whose settlers crashed before f+1 CREDITs arrived
        would otherwise pin its payments and partial signatures forever.
        Dropping is safe: certificates are an optimization of *liveness*
        — if the remaining CREDITs ever do arrive, collection simply
        restarts from zero signatures.
        """
        oldest = next(iter(self._partial))
        del self._partial[oldest]
        self._payments.pop(oldest, None)
        self.evicted_pending += 1

    @property
    def pending_subbatches(self) -> int:
        """Incomplete sub-batches currently buffered (memory tests)."""
        return len(self._partial)

    @property
    def certified_count(self) -> int:
        """Certified keys still awaiting straggler CREDITs (dedup state)."""
        return len(self._certified)
