"""Payment operations and their identifiers (§II, Figure 1).

A payment specifies its *spender*, the *sequence number* the spender
assigned, the *beneficiary*, and the *amount*.  The pair
``(spender, seq)`` is the payment's identifier (§IV) — the unit on which
the broadcast layer's agreement property is stated, and the key for
double-spend prevention: at most one payment per identifier ever settles.
"""

from __future__ import annotations

from typing import Hashable, Optional, Tuple

__all__ = ["Payment", "PaymentId", "ClientId"]

#: Clients are identified by any hashable id (ints in benchmarks,
#: strings in examples).
ClientId = Hashable

#: A payment identifier: (spender, sequence number).
PaymentId = Tuple[ClientId, int]

_MASK = 0xFFFFFFFFFFFFFFFF


class Payment:
    """One transfer of ``amount`` from ``spender`` to ``beneficiary``.

    ``deps`` carries the dependency certificates Astro II attaches to an
    outgoing payment (Listing 7); it is always empty in Astro I.
    ``submitted_at`` is measurement metadata (set by load drivers) and is
    excluded from the canonical form, so it never affects digests or
    signatures.

    Payments are immutable once constructed; every replica of a deployment
    touches each payment several times (ack guards, settle, sub-batch
    digests), so derived forms — the identifier, the flat core tuple, the
    wire size, the canonical form, and both digests — are computed once
    and cached on the instance.
    """

    __slots__ = (
        "spender",
        "seq",
        "beneficiary",
        "amount",
        "deps",
        "submitted_at",
        "identifier",
        "core",
        "wire_bytes",
        "_canonical",
        "_digest",
        "_core_digest",
    )

    def __init__(
        self,
        spender: ClientId,
        seq: int,
        beneficiary: ClientId,
        amount: int,
        deps: tuple = (),
        submitted_at: Optional[float] = None,
    ) -> None:
        if seq < 1:
            raise ValueError(f"sequence numbers start at 1, got {seq}")
        if amount < 0:
            raise ValueError(f"negative amount: {amount}")
        self.spender = spender
        self.seq = seq
        self.beneficiary = beneficiary
        self.amount = amount
        self.deps = deps
        self.submitted_at = submitted_at
        #: (spender, seq) — the agreement unit (§IV), precomputed.
        self.identifier = (spender, seq)
        #: Flat canonical form of the transfer itself (see core_canonical).
        self.core = (spender, seq, beneficiary, amount)
        #: Serialized size: ~100 bytes (§VI-B) plus attached dependencies.
        if deps:
            wire = 100
            for dep in deps:
                wire += getattr(dep, "wire_bytes", 0)
            self.wire_bytes = wire
        else:
            self.wire_bytes = 100
        self._canonical: Optional[tuple] = None
        self._digest: Optional[int] = None
        self._core_digest: Optional[int] = None

    def core_canonical(self) -> tuple:
        """Canonical form of the transfer itself, excluding dependencies.

        Dependency certificates bind *this* form of the payment they
        credit: a certificate must not re-embed the crediting payment's
        own dependency certificates, or canonical forms would recurse
        through the whole payment history.
        """
        return self.core

    def core_digest(self) -> int:
        """Memoized 64-bit digest of the core form (sub-batch hashing)."""
        value = self._core_digest
        if value is None:
            value = self._core_digest = hash(("payment-core", self.core)) & _MASK
        return value

    def canonical(self) -> tuple:
        value = self._canonical
        if value is None:
            deps_src = self.deps
            if deps_src:
                deps = tuple(
                    dep.canonical() if hasattr(dep, "canonical") else dep
                    for dep in deps_src
                )
            else:
                deps = ()
            value = self._canonical = self.core + (deps,)
        return value

    @property
    def cached_digest(self) -> int:
        """Memoized full-content digest (consulted by ``crypto.digest``)."""
        value = self._digest
        if value is None:
            c = self._canonical
            if c is None:
                c = self.canonical()
            value = self._digest = hash(("payment", c)) & _MASK
        return value

    def __reduce__(self):
        """Compact pickling for cross-shard transport (repro.sim.shard).

        Only the defining fields travel; derived forms and memoized
        digests are rebuilt on the receiving shard — identically, because
        shard workers share one interpreter hash seed.  This roughly
        halves the bytes per payment versus default slot pickling (which
        would ship identifier/core/wire_bytes/caches too).
        """
        return (
            Payment,
            (
                self.spender,
                self.seq,
                self.beneficiary,
                self.amount,
                self.deps,
                self.submitted_at,
            ),
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Payment)
            and self.core == other.core
            and self.deps == other.deps
        )

    def __hash__(self) -> int:
        return hash(self.core)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Payment {self.spender!r}#{self.seq}: "
            f"{self.amount} -> {self.beneficiary!r}>"
        )
