"""Payment operations and their identifiers (§II, Figure 1).

A payment specifies its *spender*, the *sequence number* the spender
assigned, the *beneficiary*, and the *amount*.  The pair
``(spender, seq)`` is the payment's identifier (§IV) — the unit on which
the broadcast layer's agreement property is stated, and the key for
double-spend prevention: at most one payment per identifier ever settles.
"""

from __future__ import annotations

from typing import Hashable, Optional, Tuple

__all__ = ["Payment", "PaymentId", "ClientId"]

#: Clients are identified by any hashable id (ints in benchmarks,
#: strings in examples).
ClientId = Hashable

#: A payment identifier: (spender, sequence number).
PaymentId = Tuple[ClientId, int]


class Payment:
    """One transfer of ``amount`` from ``spender`` to ``beneficiary``.

    ``deps`` carries the dependency certificates Astro II attaches to an
    outgoing payment (Listing 7); it is always empty in Astro I.
    ``submitted_at`` is measurement metadata (set by load drivers) and is
    excluded from the canonical form, so it never affects digests or
    signatures.
    """

    __slots__ = ("spender", "seq", "beneficiary", "amount", "deps", "submitted_at")

    def __init__(
        self,
        spender: ClientId,
        seq: int,
        beneficiary: ClientId,
        amount: int,
        deps: tuple = (),
        submitted_at: Optional[float] = None,
    ) -> None:
        if seq < 1:
            raise ValueError(f"sequence numbers start at 1, got {seq}")
        if amount < 0:
            raise ValueError(f"negative amount: {amount}")
        self.spender = spender
        self.seq = seq
        self.beneficiary = beneficiary
        self.amount = amount
        self.deps = deps
        self.submitted_at = submitted_at

    @property
    def identifier(self) -> PaymentId:
        return (self.spender, self.seq)

    @property
    def wire_bytes(self) -> int:
        """Serialized size: ~100 bytes (§VI-B) plus attached dependencies."""
        return 100 + sum(getattr(dep, "wire_bytes", 0) for dep in self.deps)

    def core_canonical(self) -> tuple:
        """Canonical form of the transfer itself, excluding dependencies.

        Dependency certificates bind *this* form of the payment they
        credit: a certificate must not re-embed the crediting payment's
        own dependency certificates, or canonical forms would recurse
        through the whole payment history.
        """
        return (self.spender, self.seq, self.beneficiary, self.amount)

    def canonical(self) -> tuple:
        deps = tuple(
            dep.canonical() if hasattr(dep, "canonical") else dep for dep in self.deps
        )
        return (self.spender, self.seq, self.beneficiary, self.amount, deps)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Payment)
            and self.spender == other.spender
            and self.seq == other.seq
            and self.beneficiary == other.beneficiary
            and self.amount == other.amount
            and self.deps == other.deps
        )

    def __hash__(self) -> int:
        return hash((self.spender, self.seq, self.beneficiary, self.amount))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Payment {self.spender!r}#{self.seq}: "
            f"{self.amount} -> {self.beneficiary!r}>"
        )
