"""Durable replica state: write-ahead log, snapshots, peer catch-up.

A live replica process (``repro.transport.cluster``) can be SIGKILLed at
any instant.  Everything it must not lose flows through this module:

* an **append-only write-ahead log** (WAL) of applied events — delivered
  batches, applied CREDITs, executed consensus slots, and launched-but-
  not-yet-delivered broadcasts — each record a length-framed pickle (the
  same compact ``__reduce__`` wire encodings the transport ships, see
  :mod:`repro.transport.framing`), flushed before the event is applied;
* periodic **snapshots** (atomic tmp+rename) that bound replay time; the
  WAL itself is never truncated, because its delivery history doubles as
  the serving side of the peer **catch-up** protocol a restarted replica
  uses to fetch batches it missed while dead.

Recovery replays the WAL suffix past the snapshot onto the restored
state and must land exactly on the pre-crash SHA-256 state fingerprint —
periodic ``fp`` records make divergence a hard
:class:`WalCorruption` error instead of silent drift.

Persistence is **off by default** (``replica._wal is None``): simulator
runs never touch this module, keeping the golden byte-identity suites
untouched.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
from array import array
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from ..transport.framing import FrameError, MAX_FRAME_BYTES, encode_frame
from .accounts import AccountState
from .payment import ClientId
from .xlog import ExclusiveLog

__all__ = [
    "CatchUpReply",
    "CatchUpRequest",
    "RecoveryReport",
    "ReplicaStore",
    "WalCorruption",
    "WriteAheadLog",
    "restore_account_state",
    "serve_catch_up",
    "snapshot_account_state",
    "state_fingerprint",
]

_unpack_header = struct.Struct(">I").unpack_from

#: Default number of WAL records between periodic state-fingerprint
#: self-check records.
FINGERPRINT_INTERVAL = 64

#: Default number of WAL records between snapshots.
SNAPSHOT_INTERVAL = 256

#: Upper bound on batches served in one catch-up reply.
CATCH_UP_MAX_BATCHES = 512


class WalCorruption(Exception):
    """Recovery replay diverged from the recorded state fingerprint."""


def state_fingerprint(state: Any) -> str:
    """SHA-256 fingerprint of an :class:`AccountState`.

    Identical to the formula golden-pinned by
    :func:`repro.sim.shard.state_fingerprints`, so a recovered live
    replica can be compared against a simulator prediction directly.
    """
    return hashlib.sha256(repr(state.snapshot()).encode()).hexdigest()


def _genesis_digest(state: AccountState) -> str:
    """Fingerprint of the interned genesis prefix (restore alignment)."""
    prefix = tuple(state._interner._clients[: state._genesis_len])
    return hashlib.sha256(repr(prefix).encode()).hexdigest()


def snapshot_account_state(state: Any) -> Dict[str, Any]:
    """Full picklable capture of an account state (incl. xlogs).

    Array-backed states are captured in the **format-2** encoding: the
    genesis prefix of the balance/seqnum slabs ships as raw int64 bytes
    (O(16 bytes/account), no per-client PyObjects in the pickle), with
    the rare post-genesis members and the non-empty xlogs spelled out
    per client.  Dict-backed states fall back to the legacy format-1
    dict capture.
    """
    if not isinstance(state, AccountState):
        return {
            "balances": dict(state.balances),
            "seqnums": dict(state.seqnums),
            "xlogs": {
                owner: list(log._entries)
                for owner, log in state.xlogs.items()
            },
        }
    genesis_len = state._genesis_len
    bal = state._bal
    seq = state._seq
    clients = state._interner._clients

    def _extras(slab: Any, members: Any) -> List[Tuple[ClientId, int]]:
        length = len(slab)
        return [
            (clients[index], slab[index] if index < length else 0)
            for index in members
        ]

    return {
        "format": 2,
        "genesis_len": genesis_len,
        "genesis_digest": _genesis_digest(state),
        "balances": bal[:genesis_len].tobytes(),
        "seqnums": seq[:genesis_len].tobytes(),
        "extra_balances": _extras(bal, state._extra_bal),
        "extra_seqnums": _extras(seq, state._extra_seq),
        "xlog_extras": [clients[index] for index in state._extra_xlog],
        "xlog_entries": {
            log.owner: list(log._entries)
            for log in state._xlog_map.values()
            if log._entries
        },
    }


def _reset_account_state(state: AccountState) -> None:
    """Zero an array-backed state ahead of a restore (genesis kept)."""
    state._bal = array("q", bytes(8 * len(state._bal)))
    state._seq = array("q", bytes(8 * len(state._seq)))
    state._extra_bal = {}
    state._extra_seq = {}
    state._extra_xlog = {}
    state._xlog_map = {}
    state._snap_order = None


def restore_account_state(state: Any, data: Dict[str, Any]) -> None:
    """Rebuild an :class:`AccountState` in place from a capture.

    Accepts both the format-2 array encoding and legacy format-1 dict
    pickles (pre-refactor snapshots on disk still replay).
    """
    if data.get("format") == 2:
        if data["genesis_len"] != state._genesis_len or (
            data["genesis_digest"] != _genesis_digest(state)
        ):
            raise WalCorruption(
                "snapshot genesis does not match this replica's genesis"
            )
        _reset_account_state(state)
        bal = array("q")
        bal.frombytes(data["balances"])
        seq = array("q")
        seq.frombytes(data["seqnums"])
        state._bal = bal
        state._seq = seq
        for client, value in data["extra_balances"]:
            state.balances[client] = value
        for client, value in data["extra_seqnums"]:
            state.seqnums[client] = value
        for owner in data["xlog_extras"]:
            state.xlog(owner)
        for owner, entries in data["xlog_entries"].items():
            state.xlog(owner)._entries = list(entries)
        return
    if isinstance(state, AccountState):
        # Legacy dict capture restored onto an array-backed state.
        _reset_account_state(state)
        for client, value in data["balances"].items():
            state.balances[client] = value
        for client, value in data["seqnums"].items():
            state.seqnums[client] = value
        for owner, entries in data["xlogs"].items():
            log = state.xlog(owner)
            log._entries = list(entries)
        return
    state.balances = dict(data["balances"])
    state.seqnums = dict(data["seqnums"])
    xlogs: Dict[ClientId, ExclusiveLog] = {}
    for owner, entries in data["xlogs"].items():
        log = ExclusiveLog(owner)
        log._entries = list(entries)
        xlogs[owner] = log
    state.xlogs = xlogs


class WriteAheadLog:
    """Append-only record file: length-framed pickles, flushed per record.

    A SIGKILL can land mid-write, leaving a torn final record; recovery
    scans to the last complete record and truncates the torn tail before
    appending again (framing cannot resynchronize past a bad header).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._file: Optional[Any] = None
        #: Complete records currently in the file (valid after
        #: :meth:`scan` / :meth:`open_for_append`).
        self.count = 0

    # -- recovery-side reading -----------------------------------------
    def scan(self) -> Tuple[List[Any], int]:
        """Return (records, valid_byte_length), tolerating a torn tail."""
        try:
            with open(self.path, "rb") as fh:
                data = fh.read()
        except FileNotFoundError:
            return [], 0
        records, valid = _parse_records(data)
        return records, valid

    def iter_records(self) -> Iterator[Any]:
        """Iterate the complete records currently on disk.

        Safe to call while the log is being appended (serves catch-up
        from a live replica): a torn or partially flushed tail simply
        ends the iteration.
        """
        records, _ = self.scan()
        return iter(records)

    # -- append-side writing -------------------------------------------
    def open_for_append(self) -> int:
        """Truncate any torn tail and open for appending.

        Returns the number of complete records already in the log.
        """
        records, valid = self.scan()
        self.count = len(records)
        self._file = open(self.path, "ab")
        if self._file.tell() != valid:
            self._file.truncate(valid)
            self._file.seek(valid)
        return self.count

    def append(self, record: Any) -> None:
        if self._file is None:
            raise RuntimeError("WAL is not open for appending")
        self._file.write(encode_frame(record))
        # Flush to the OS: survives SIGKILL of this process (durability
        # against machine crashes would need fsync; process-kill chaos —
        # the failure model here — only needs the page cache).
        self._file.flush()
        self.count += 1

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


def _parse_records(data: bytes) -> Tuple[List[Any], int]:
    records: List[Any] = []
    offset = 0
    total = len(data)
    while total - offset >= 4:
        (length,) = _unpack_header(data, offset)
        if length == 0 or length > MAX_FRAME_BYTES:
            break  # corrupt header: treat the rest as a torn tail
        end = offset + 4 + length
        if end > total:
            break  # torn tail
        try:
            records.append(pickle.loads(data[offset + 4 : end]))
        except Exception:
            break
        offset = end
    return records, offset


class RecoveryReport:
    """What :meth:`bind_persistence` found and did."""

    __slots__ = ("had_snapshot", "replayed", "fingerprint")

    def __init__(self, had_snapshot: bool, replayed: int, fingerprint: str) -> None:
        self.had_snapshot = had_snapshot
        self.replayed = replayed
        self.fingerprint = fingerprint

    def as_dict(self) -> Dict[str, Any]:
        return {
            "had_snapshot": self.had_snapshot,
            "replayed": self.replayed,
            "fingerprint": self.fingerprint,
        }


class ReplicaStore:
    """One replica's durable storage: a WAL plus a snapshot slot.

    The store starts **not recording**: the owning replica first restores
    the snapshot, replays the WAL suffix (with :attr:`recording` off so
    replayed events are not re-appended), then calls
    :meth:`finish_recovery` to begin appending.
    """

    def __init__(
        self,
        root: str,
        node_id: int,
        snapshot_interval: int = SNAPSHOT_INTERVAL,
        fingerprint_interval: int = FINGERPRINT_INTERVAL,
    ) -> None:
        os.makedirs(root, exist_ok=True)
        self.root = root
        self.node_id = node_id
        self.wal = WriteAheadLog(os.path.join(root, f"replica-{node_id}.wal"))
        self.snapshot_path = os.path.join(root, f"replica-{node_id}.snap")
        self.snapshot_interval = snapshot_interval
        self.fingerprint_interval = fingerprint_interval
        self.recording = False
        #: Record index of the last snapshot / fingerprint written.
        self._last_snapshot_at = 0
        self._last_fingerprint_at = 0

    # -- recovery ------------------------------------------------------
    def load_snapshot(self) -> Optional[Dict[str, Any]]:
        try:
            with open(self.snapshot_path, "rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception as exc:  # truncated/corrupt snapshot: hard error
            raise WalCorruption(f"unreadable snapshot {self.snapshot_path}: {exc!r}")

    def recovery_records(self) -> List[Any]:
        """All complete WAL records, torn tail tolerated."""
        records, _ = self.wal.scan()
        return records

    def finish_recovery(self) -> None:
        """Truncate any torn tail, open for appending, start recording."""
        count = self.wal.open_for_append()
        self._last_snapshot_at = count
        self._last_fingerprint_at = count
        self.recording = True

    # -- appending -----------------------------------------------------
    def record(self, record: Tuple[Any, ...]) -> None:
        if self.recording:
            self.wal.append(record)

    def fingerprint_due(self) -> bool:
        return (
            self.recording
            and self.wal.count - self._last_fingerprint_at >= self.fingerprint_interval
        )

    def record_fingerprint(self, fingerprint: str) -> None:
        if self.recording:
            self.wal.append(("fp", fingerprint))
            self._last_fingerprint_at = self.wal.count

    def snapshot_due(self) -> bool:
        return (
            self.recording
            and self.wal.count - self._last_snapshot_at >= self.snapshot_interval
        )

    def write_snapshot(self, data: Dict[str, Any]) -> None:
        """Atomically replace the snapshot (tmp + rename).

        ``data["wal_count"]`` is stamped here: replay after restore
        starts from this record index.
        """
        data = dict(data)
        data["wal_count"] = self.wal.count
        tmp = self.snapshot_path + ".tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(data, fh, protocol=pickle.HIGHEST_PROTOCOL)
            fh.flush()
        os.replace(tmp, self.snapshot_path)
        self._last_snapshot_at = self.wal.count

    def close(self) -> None:
        self.recording = False
        self.wal.close()


# ----------------------------------------------------------------------
# Peer catch-up (bounded, pull-based)
# ----------------------------------------------------------------------
class CatchUpRequest:
    """A recovering replica asks a peer for batches past its frontier.

    ``frontier`` maps origin → highest contiguously delivered broadcast
    sequence; ``extra`` holds out-of-order ``(origin, seq)`` pairs already
    delivered above the frontier.  The peer serves from its own WAL.
    """

    __slots__ = ("tag", "frontier", "extra", "max_batches")

    def __init__(
        self,
        tag: int,
        frontier: Dict[int, int],
        extra: Tuple[Tuple[int, int], ...],
        max_batches: int = CATCH_UP_MAX_BATCHES,
    ) -> None:
        self.tag = tag
        self.frontier = frontier
        self.extra = extra
        self.max_batches = max_batches

    def __reduce__(self):
        return (
            CatchUpRequest,
            (self.tag, self.frontier, self.extra, self.max_batches),
        )


class CatchUpReply:
    """``batches`` is a tuple of ``(origin, seq, batch)``; ``complete``
    means the serving peer had nothing further past the frontier."""

    __slots__ = ("tag", "batches", "complete")

    def __init__(
        self, tag: int, batches: Tuple[Tuple[int, int, Any], ...], complete: bool
    ) -> None:
        self.tag = tag
        self.batches = batches
        self.complete = complete

    def __reduce__(self):
        return (CatchUpReply, (self.tag, self.batches, self.complete))


def serve_catch_up(store: ReplicaStore, request: CatchUpRequest) -> CatchUpReply:
    """Answer a peer's catch-up request from this replica's own WAL.

    The WAL is append-only and never truncated, so it holds this
    replica's full delivery history (including batches it imported via
    its own catch-up) — a single surviving correct peer suffices.
    """
    frontier = request.frontier
    have: Set[Tuple[int, int]] = set(request.extra)
    batches: List[Tuple[int, int, Any]] = []
    complete = True
    for record in store.wal.iter_records():
        if record[0] != "deliver":
            continue
        origin, seq = record[1], record[2]
        if seq <= frontier.get(origin, 0) or (origin, seq) in have:
            continue
        if len(batches) >= request.max_batches:
            complete = False
            break
        have.add((origin, seq))
        batches.append((origin, seq, record[3]))
    return CatchUpReply(request.tag, tuple(batches), complete)
