"""System directory: clients → representatives, replicas → shards.

The paper assumes "the mapping of clients to their representative replicas
is publicly known" (§III); with sharding, shard membership is likewise
public knowledge (§V).  The directory is that shared knowledge — plain
data distributed out-of-band, not a trusted online service.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..brb.quorums import max_faulty
from .payment import ClientId

__all__ = ["Directory"]


class Directory:
    """Static mapping of clients, representatives, shards."""

    def __init__(self) -> None:
        self._rep_of: Dict[ClientId, int] = {}
        self._shard_of_replica: Dict[int, int] = {}
        self._shard_members: Dict[int, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Registration (system assembly time)
    # ------------------------------------------------------------------
    def register_shard(self, shard_id: int, members: Tuple[int, ...]) -> None:
        if shard_id in self._shard_members:
            raise ValueError(f"shard {shard_id} already registered")
        if not members:
            raise ValueError("a shard needs at least one replica")
        self._shard_members[shard_id] = tuple(members)
        for node_id in members:
            if node_id in self._shard_of_replica:
                raise ValueError(f"replica {node_id} already in a shard")
            self._shard_of_replica[node_id] = shard_id

    def register_client(self, client: ClientId, representative: int) -> None:
        if representative not in self._shard_of_replica:
            raise ValueError(f"representative {representative} is not a replica")
        self._rep_of[client] = representative

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def rep_of(self, client: ClientId) -> int:
        """Representative replica of ``client`` (s(·) notation, §V)."""
        return self._rep_of[client]

    @property
    def rep_map(self) -> Dict[ClientId, int]:
        """The client → representative mapping itself.

        Exposed for hot loops that look up representatives per payment;
        treat as read-only.  The dict object is stable for the lifetime of
        the directory (reconfiguration mutates it in place), so callers
        may cache the reference.
        """
        return self._rep_of

    def knows_client(self, client: ClientId) -> bool:
        return client in self._rep_of

    def shard_of_replica(self, node_id: int) -> int:
        return self._shard_of_replica[node_id]

    def shard_of_client(self, client: ClientId) -> int:
        return self._shard_of_replica[self._rep_of[client]]

    def members(self, shard_id: int) -> Tuple[int, ...]:
        return self._shard_members[shard_id]

    def faulty_bound(self, shard_id: int) -> int:
        """f for one shard — the N/3 bound applies per shard (§V)."""
        return max_faulty(len(self._shard_members[shard_id]))

    @property
    def shard_ids(self) -> List[int]:
        return sorted(self._shard_members)

    @property
    def clients(self) -> List[ClientId]:
        return list(self._rep_of)

    def clients_of_shard(self, shard_id: int) -> List[ClientId]:
        return [
            client
            for client, rep in self._rep_of.items()
            if self._shard_of_replica[rep] == shard_id
        ]
