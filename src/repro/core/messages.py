"""Client ↔ representative messages.

Clients are lightweight, intermittently connected participants (§II); they
exchange exactly two message kinds with their representative: a payment
submission and (optionally) a settlement confirmation.  Balance queries
are a read of the representative's local state (§III "Checking the
Balance") and are modelled as a request/response pair.
"""

from __future__ import annotations

from .payment import ClientId, Payment

__all__ = ["ClientSubmit", "ClientConfirm", "BalanceQuery", "BalanceReply"]

#: Wire size of a client request: three fields plus client authentication
#: data, "roughly 100 bytes" (§VI-B).
SUBMIT_BYTES = 100

CONFIRM_BYTES = 64


class ClientSubmit:
    """A payment submitted by a client to her representative (Listing 1)."""

    __slots__ = ("payment",)

    def __init__(self, payment: Payment) -> None:
        self.payment = payment


class ClientConfirm:
    """Settlement notification from representative to client (§III)."""

    __slots__ = ("payment", "settled_at")

    def __init__(self, payment: Payment, settled_at: float) -> None:
        self.payment = payment
        self.settled_at = settled_at


class BalanceQuery:
    __slots__ = ("client",)

    def __init__(self, client: ClientId) -> None:
        self.client = client


class BalanceReply:
    __slots__ = ("client", "balance")

    def __init__(self, client: ClientId, balance: int) -> None:
        self.client = client
        self.balance = balance
