"""Replicated account state: balances, sequence numbers, xlogs.

This is the local state every replica maintains (Listing 2):
``sn[..]`` (last settled sequence number per client), ``bal[..]``
(balances), and ``xlogs[..]``.  The same structure backs Astro I,
Astro II, and the consensus baseline — the systems differ in *how* they
agree on what to apply, not in the applied state.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

from .payment import ClientId, Payment
from .xlog import ExclusiveLog

__all__ = ["AccountState"]


class AccountState:
    """Balances, sequence numbers, and xlogs for a set of clients."""

    __slots__ = ("balances", "seqnums", "xlogs")

    def __init__(self, genesis: Mapping[ClientId, int]) -> None:
        for client, amount in genesis.items():
            if amount < 0:
                raise ValueError(f"negative genesis balance for {client!r}: {amount}")
        self.balances: Dict[ClientId, int] = dict(genesis)
        self.seqnums: Dict[ClientId, int] = {client: 0 for client in genesis}
        self.xlogs: Dict[ClientId, ExclusiveLog] = {
            client: ExclusiveLog(client) for client in genesis
        }

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def balance(self, client: ClientId) -> int:
        return self.balances.get(client, 0)

    def seqnum(self, client: ClientId) -> int:
        return self.seqnums.get(client, 0)

    def xlog(self, client: ClientId) -> ExclusiveLog:
        log = self.xlogs.get(client)
        if log is None:
            log = ExclusiveLog(client)
            self.xlogs[client] = log
        return log

    def knows(self, client: ClientId) -> bool:
        return client in self.seqnums

    def add_client(self, client: ClientId, balance: int = 0) -> None:
        """Register a new client (reconfiguration path, §A)."""
        if client in self.seqnums:
            raise ValueError(f"client {client!r} already registered")
        self.balances[client] = balance
        self.seqnums[client] = 0
        self.xlogs[client] = ExclusiveLog(client)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def credit(self, client: ClientId, amount: int) -> None:
        self.balances[client] = self.balances.get(client, 0) + amount

    def settle_full(self, payment: Payment) -> None:
        """Listing 4: withdraw, deposit, bump sn, append to xlog.

        This is Astro I's (and the consensus baseline's) settle, where the
        beneficiary is credited directly.  Astro II uses
        :meth:`settle_spend_only` plus dependency materialization.
        """
        spender = payment.spender
        self.balances[spender] = self.balances.get(spender, 0) - payment.amount
        self.credit(payment.beneficiary, payment.amount)
        self.seqnums[spender] = self.seqnums.get(spender, 0) + 1
        self.xlog(spender).append(payment)

    def settle_spend_only(self, payment: Payment) -> None:
        """Listing 9's spend half: withdraw, bump sn, append to xlog.

        The beneficiary side is handled by CREDIT messages / dependency
        certificates, never by a direct deposit.
        """
        spender = payment.spender
        self.balances[spender] = self.balances.get(spender, 0) - payment.amount
        self.seqnums[spender] = self.seqnums.get(spender, 0) + 1
        self.xlog(spender).append(payment)

    # ------------------------------------------------------------------
    # Introspection (tests, invariants)
    # ------------------------------------------------------------------
    def total_balance(self) -> int:
        return sum(self.balances.values())

    def snapshot(self) -> Tuple[Tuple[ClientId, int, int], ...]:
        """Deterministic (client, balance, sn) tuple for state comparison."""
        return tuple(
            (client, self.balances.get(client, 0), self.seqnums.get(client, 0))
            for client in sorted(self.seqnums, key=repr)
        )

    def clients(self) -> Iterable[ClientId]:
        return self.seqnums.keys()
