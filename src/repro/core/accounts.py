"""Replicated account state: balances, sequence numbers, xlogs.

This is the local state every replica maintains (Listing 2):
``sn[..]`` (last settled sequence number per client), ``bal[..]``
(balances), and ``xlogs[..]``.  The same structure backs Astro I,
Astro II, and the consensus baseline — the systems differ in *how* they
agree on what to apply, not in the applied state.

Storage layout (the millions-of-users refactor): client ids are interned
to dense int indices (:class:`~repro.core.interning.ClientInterner`,
typically shared by all replicas of a system), and balances and sequence
numbers live in flat ``array('q')`` slabs — 16 bytes per client per
replica instead of one PyObject constellation per client.  Xlogs are
materialized lazily: most of 10⁶ accounts never transact in a run, so an
unmaterialized member reads as an empty log.  The ``balances`` /
``seqnums`` / ``xlogs`` attributes remain dict-like views with the exact
key set and insertion-order iteration of the former plain dicts, so
every consumer — invariant monitors, auditors, fingerprints, tests —
observes byte-identical behavior.

Invariant the views rely on: a slab slot of a *non-member* index is
always 0, so ``get(client, 0)`` and arithmetic reads skip membership
checks entirely.

Values are int64: balances and sequence numbers beyond ±2⁶³ raise
``OverflowError`` (every existing workload stays ≤ ~10¹⁵).
"""

from __future__ import annotations

from array import array
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from .interning import ClientInterner
from .payment import ClientId, Payment
from .xlog import ExclusiveLog

__all__ = ["AccountState", "DictAccountState"]


def _zero_extend(slab: array, index: int) -> None:
    """Grow ``slab`` in place so ``index`` is addressable (zero-filled)."""
    slab.frombytes(bytes(8 * (index + 1 - len(slab))))


class _BalancesView:
    """Dict-like view over the balance slab (insertion-order parity)."""

    __slots__ = ("_state",)

    def __init__(self, state: "AccountState") -> None:
        self._state = state

    def _indices(self) -> Iterator[int]:
        st = self._state
        yield from range(st._genesis_len)
        yield from st._extra_bal

    def __len__(self) -> int:
        st = self._state
        return st._genesis_len + len(st._extra_bal)

    def __contains__(self, client: ClientId) -> bool:
        st = self._state
        index = st._interner._index.get(client)
        if index is None:
            return False
        return index < st._genesis_len or index in st._extra_bal

    def __iter__(self) -> Iterator[ClientId]:
        clients = self._state._interner._clients
        for index in self._indices():
            yield clients[index]

    def keys(self) -> List[ClientId]:
        return list(self)

    def values(self) -> List[int]:
        st = self._state
        slab = st._bal
        length = len(slab)
        return [
            slab[index] if index < length else 0
            for index in self._indices()
        ]

    def items(self) -> List[Tuple[ClientId, int]]:
        st = self._state
        clients = st._interner._clients
        slab = st._bal
        length = len(slab)
        return [
            (clients[index], slab[index] if index < length else 0)
            for index in self._indices()
        ]

    def __getitem__(self, client: ClientId) -> int:
        st = self._state
        index = st._interner._index.get(client)
        if index is None or not (
            index < st._genesis_len or index in st._extra_bal
        ):
            raise KeyError(client)
        slab = st._bal
        return slab[index] if index < len(slab) else 0

    def get(self, client: ClientId, default: Optional[int] = None):
        st = self._state
        index = st._interner._index.get(client)
        if index is None:
            return default
        slab = st._bal
        value = slab[index] if index < len(slab) else 0
        if value == 0 and not (
            index < st._genesis_len or index in st._extra_bal
        ):
            return default
        return value

    def __setitem__(self, client: ClientId, value: int) -> None:
        st = self._state
        index = st._interner.intern(client)
        slab = st._bal
        if index >= len(slab):
            _zero_extend(slab, index)
        if index >= st._genesis_len and index not in st._extra_bal:
            st._extra_bal[index] = None
        slab[index] = value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (_BalancesView, _SeqnumsView)):
            other = dict(other.items())
        if isinstance(other, Mapping):
            return dict(self.items()) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_BalancesView({dict(self.items())!r})"


class _SeqnumsView:
    """Dict-like view over the sequence-number slab."""

    __slots__ = ("_state",)

    def __init__(self, state: "AccountState") -> None:
        self._state = state

    def _indices(self) -> Iterator[int]:
        st = self._state
        yield from range(st._genesis_len)
        yield from st._extra_seq

    def __len__(self) -> int:
        st = self._state
        return st._genesis_len + len(st._extra_seq)

    def __contains__(self, client: ClientId) -> bool:
        st = self._state
        index = st._interner._index.get(client)
        if index is None:
            return False
        return index < st._genesis_len or index in st._extra_seq

    def __iter__(self) -> Iterator[ClientId]:
        clients = self._state._interner._clients
        for index in self._indices():
            yield clients[index]

    def keys(self) -> List[ClientId]:
        return list(self)

    def values(self) -> List[int]:
        st = self._state
        slab = st._seq
        length = len(slab)
        return [
            slab[index] if index < length else 0
            for index in self._indices()
        ]

    def items(self) -> List[Tuple[ClientId, int]]:
        st = self._state
        clients = st._interner._clients
        slab = st._seq
        length = len(slab)
        return [
            (clients[index], slab[index] if index < length else 0)
            for index in self._indices()
        ]

    def __getitem__(self, client: ClientId) -> int:
        st = self._state
        index = st._interner._index.get(client)
        if index is None or not (
            index < st._genesis_len or index in st._extra_seq
        ):
            raise KeyError(client)
        slab = st._seq
        return slab[index] if index < len(slab) else 0

    def get(self, client: ClientId, default: Optional[int] = None):
        st = self._state
        index = st._interner._index.get(client)
        if index is None:
            return default
        slab = st._seq
        value = slab[index] if index < len(slab) else 0
        if value == 0 and not (
            index < st._genesis_len or index in st._extra_seq
        ):
            return default
        return value

    def __setitem__(self, client: ClientId, value: int) -> None:
        st = self._state
        index = st._interner.intern(client)
        slab = st._seq
        if index >= len(slab):
            _zero_extend(slab, index)
        if index >= st._genesis_len and index not in st._extra_seq:
            st._extra_seq[index] = None
            st._snap_order = None
        slab[index] = value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (_BalancesView, _SeqnumsView)):
            other = dict(other.items())
        if isinstance(other, Mapping):
            return dict(self.items()) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_SeqnumsView({dict(self.items())!r})"


class _XlogsView:
    """Dict-like view over lazily materialized xlogs.

    Key set and order match the former eager dict: genesis clients
    first, then post-genesis additions in first-registration order.
    ``[client]`` materializes a persistent log (mutations stick);
    iteration yields transient empty logs for members that never
    transacted, so sampling 10⁶ idle accounts allocates nothing lasting.
    """

    __slots__ = ("_state",)

    def __init__(self, state: "AccountState") -> None:
        self._state = state

    def _indices(self) -> Iterator[int]:
        st = self._state
        yield from range(st._genesis_len)
        yield from st._extra_xlog

    def __len__(self) -> int:
        st = self._state
        return st._genesis_len + len(st._extra_xlog)

    def __contains__(self, client: ClientId) -> bool:
        st = self._state
        index = st._interner._index.get(client)
        if index is None:
            return False
        return index < st._genesis_len or index in st._extra_xlog

    def __iter__(self) -> Iterator[ClientId]:
        clients = self._state._interner._clients
        for index in self._indices():
            yield clients[index]

    def keys(self) -> List[ClientId]:
        return list(self)

    def values(self) -> List[ExclusiveLog]:
        return [log for _, log in self.items()]

    def items(self) -> List[Tuple[ClientId, ExclusiveLog]]:
        st = self._state
        clients = st._interner._clients
        materialized = st._xlog_map
        out: List[Tuple[ClientId, ExclusiveLog]] = []
        for index in self._indices():
            client = clients[index]
            log = materialized.get(index)
            if log is None:
                log = ExclusiveLog(client)
            out.append((client, log))
        return out

    def __getitem__(self, client: ClientId) -> ExclusiveLog:
        st = self._state
        index = st._interner._index.get(client)
        if index is None or not (
            index < st._genesis_len or index in st._extra_xlog
        ):
            raise KeyError(client)
        return st._materialize(index, client)

    def get(
        self, client: ClientId, default: Optional[ExclusiveLog] = None
    ) -> Optional[ExclusiveLog]:
        st = self._state
        index = st._interner._index.get(client)
        if index is None or not (
            index < st._genesis_len or index in st._extra_xlog
        ):
            return default
        return st._materialize(index, client)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_XlogsView(members={len(self)})"


class AccountState:
    """Balances, sequence numbers, and xlogs for a set of clients."""

    __slots__ = (
        "_interner",
        "_genesis_len",
        "_bal",
        "_seq",
        "_extra_bal",
        "_extra_seq",
        "_extra_xlog",
        "_xlog_map",
        "_snap_order",
        "balances",
        "seqnums",
        "xlogs",
    )

    def __init__(
        self,
        genesis: Mapping[ClientId, int],
        interner: Optional[ClientInterner] = None,
    ) -> None:
        for client, amount in genesis.items():
            if amount < 0:
                raise ValueError(
                    f"negative genesis balance for {client!r}: {amount}"
                )
        if interner is None:
            interner = ClientInterner(genesis)
        self._interner = interner
        #: Indices ``0 .. _genesis_len-1`` are implicit members of all
        #: three maps, in genesis order — the zero-overhead common case
        #: where the (shared) interner starts from this very genesis.
        genesis_len = 0
        extra_bal: Dict[int, None] = {}
        extra_seq: Dict[int, None] = {}
        extra_xlog: Dict[int, None] = {}
        prefix = True
        top = -1
        for position, client in enumerate(genesis):
            index = interner.intern(client)
            if prefix and index == position:
                genesis_len += 1
            else:
                # Interner pre-populated with other clients: the tail of
                # the genesis set is tracked explicitly (rare path; the
                # systems always seed the shared interner from genesis).
                prefix = False
                extra_bal[index] = None
                extra_seq[index] = None
                extra_xlog[index] = None
            if index > top:
                top = index
        self._genesis_len = genesis_len
        bal = array("q", bytes(8 * (top + 1)))
        for client, amount in genesis.items():
            if amount:
                bal[interner._index[client]] = amount
        self._bal = bal
        self._seq = array("q", bytes(8 * (top + 1)))
        self._extra_bal = extra_bal
        self._extra_seq = extra_seq
        self._extra_xlog = extra_xlog
        self._xlog_map: Dict[int, ExclusiveLog] = {}
        #: Cached repr-sorted member indices for :meth:`snapshot`;
        #: invalidated whenever the seqnum member set changes.
        self._snap_order: Optional[List[int]] = None
        self.balances = _BalancesView(self)
        self.seqnums = _SeqnumsView(self)
        self.xlogs = _XlogsView(self)

    # ------------------------------------------------------------------
    # Internal plumbing
    # ------------------------------------------------------------------
    def _materialize(self, index: int, client: ClientId) -> ExclusiveLog:
        log = self._xlog_map.get(index)
        if log is None:
            log = ExclusiveLog(client)
            self._xlog_map[index] = log
            if index >= self._genesis_len and index not in self._extra_xlog:
                self._extra_xlog[index] = None
        return log

    def _ensure_spender(self, index: int) -> None:
        """Make ``index`` a member of balances+seqnums (settle paths)."""
        if index >= self._genesis_len:
            if index not in self._extra_bal:
                self._extra_bal[index] = None
            if index not in self._extra_seq:
                self._extra_seq[index] = None
                self._snap_order = None
        if index >= len(self._bal):
            _zero_extend(self._bal, index)
        if index >= len(self._seq):
            _zero_extend(self._seq, index)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def balance(self, client: ClientId) -> int:
        index = self._interner._index.get(client)
        if index is None:
            return 0
        slab = self._bal
        return slab[index] if index < len(slab) else 0

    def seqnum(self, client: ClientId) -> int:
        index = self._interner._index.get(client)
        if index is None:
            return 0
        slab = self._seq
        return slab[index] if index < len(slab) else 0

    def xlog(self, client: ClientId) -> ExclusiveLog:
        return self._materialize(self._interner.intern(client), client)

    def knows(self, client: ClientId) -> bool:
        index = self._interner._index.get(client)
        if index is None:
            return False
        return index < self._genesis_len or index in self._extra_seq

    def add_client(self, client: ClientId, balance: int = 0) -> None:
        """Register a new client (reconfiguration path, §A)."""
        if self.knows(client):
            raise ValueError(f"client {client!r} already registered")
        index = self._interner.intern(client)
        self._ensure_spender(index)
        self._bal[index] = balance
        self._seq[index] = 0
        if index >= self._genesis_len and index not in self._extra_xlog:
            self._extra_xlog[index] = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def credit(self, client: ClientId, amount: int) -> None:
        index = self._interner.intern(client)
        slab = self._bal
        if index >= len(slab):
            _zero_extend(slab, index)
        if index >= self._genesis_len and index not in self._extra_bal:
            self._extra_bal[index] = None
        slab[index] += amount

    def settle_full(self, payment: Payment) -> None:
        """Listing 4: withdraw, deposit, bump sn, append to xlog.

        This is Astro I's (and the consensus baseline's) settle, where the
        beneficiary is credited directly.  Astro II uses
        :meth:`settle_spend_only` plus dependency materialization.  Runs
        once per payment per replica — the hottest code in Astro I.
        """
        interner = self._interner
        spender = payment.spender
        sp = interner._index.get(spender)
        if sp is None:
            sp = interner.intern(spender)
        self._ensure_spender(sp)
        amount = payment.amount
        bal = self._bal
        bal[sp] -= amount
        ben = interner._index.get(payment.beneficiary)
        if ben is None:
            ben = interner.intern(payment.beneficiary)
        if ben >= len(bal):
            _zero_extend(bal, ben)
        if ben >= self._genesis_len and ben not in self._extra_bal:
            self._extra_bal[ben] = None
        bal[ben] += amount
        self._seq[sp] += 1
        log = self._xlog_map.get(sp)
        if log is None:
            log = self._materialize(sp, spender)
        log.append(payment)

    def settle_spend_only(self, payment: Payment) -> None:
        """Listing 9's spend half: withdraw, bump sn, append to xlog.

        The beneficiary side is handled by CREDIT messages / dependency
        certificates, never by a direct deposit.
        """
        interner = self._interner
        spender = payment.spender
        sp = interner._index.get(spender)
        if sp is None:
            sp = interner.intern(spender)
        self._ensure_spender(sp)
        self._bal[sp] -= payment.amount
        self._seq[sp] += 1
        log = self._xlog_map.get(sp)
        if log is None:
            log = self._materialize(sp, spender)
        log.append(payment)

    def try_settle_spend(self, payment: Payment) -> bool:
        """Funds-checked :meth:`settle_spend_only` in one pass.

        Returns ``False`` (state untouched) when the spender's balance
        does not cover the amount — Listing 9 l.49, Astro II's
        drop-without-advancing-sn path.  One interner lookup and int64
        slab ops per call: Astro II's hottest code.
        """
        interner = self._interner
        spender = payment.spender
        sp = interner._index.get(spender)
        if sp is None:
            sp = interner.intern(spender)
        bal = self._bal
        balance = bal[sp] if sp < len(bal) else 0
        amount = payment.amount
        if balance < amount:
            return False
        self._ensure_spender(sp)
        bal = self._bal
        bal[sp] = balance - amount
        self._seq[sp] += 1
        log = self._xlog_map.get(sp)
        if log is None:
            log = self._materialize(sp, spender)
        log.append(payment)
        return True

    # ------------------------------------------------------------------
    # Introspection (tests, invariants)
    # ------------------------------------------------------------------
    def total_balance(self) -> int:
        # Non-member slots are always 0, so the raw slab sum equals the
        # member sum — one C-speed pass regardless of account count.
        return sum(self._bal)

    def snapshot(self) -> Tuple[Tuple[ClientId, int, int], ...]:
        """Deterministic (client, balance, sn) tuple for state comparison.

        The repr-sorted member order is cached and invalidated only when
        the member set changes (``add_client`` / first settle of an
        unknown spender) — fingerprinting 10⁶ idle accounts no longer
        re-sorts per sample.
        """
        clients = self._interner._clients
        order = self._snap_order
        if order is None:
            members = list(range(self._genesis_len))
            members.extend(self._extra_seq)
            members.sort(key=lambda index: repr(clients[index]))
            order = self._snap_order = members
        bal = self._bal
        seq = self._seq
        nb = len(bal)
        ns = len(seq)
        return tuple(
            (
                clients[index],
                bal[index] if index < nb else 0,
                seq[index] if index < ns else 0,
            )
            for index in order
        )

    def clients(self) -> Iterable[ClientId]:
        return self.seqnums.keys()


class DictAccountState:
    """The pre-refactor dict-of-objects store, kept for memory/perf A/B.

    One dict entry per client in each of three maps plus an eager
    :class:`ExclusiveLog` — O(PyObject) per account.  Semantically
    identical to :class:`AccountState`; `bench/memory.py` instantiates
    both to report resident bytes/account side by side.
    """

    __slots__ = ("balances", "seqnums", "xlogs")

    def __init__(self, genesis: Mapping[ClientId, int]) -> None:
        for client, amount in genesis.items():
            if amount < 0:
                raise ValueError(
                    f"negative genesis balance for {client!r}: {amount}"
                )
        self.balances: Dict[ClientId, int] = dict(genesis)
        self.seqnums: Dict[ClientId, int] = {client: 0 for client in genesis}
        self.xlogs: Dict[ClientId, ExclusiveLog] = {
            client: ExclusiveLog(client) for client in genesis
        }

    def balance(self, client: ClientId) -> int:
        return self.balances.get(client, 0)

    def seqnum(self, client: ClientId) -> int:
        return self.seqnums.get(client, 0)

    def xlog(self, client: ClientId) -> ExclusiveLog:
        log = self.xlogs.get(client)
        if log is None:
            log = ExclusiveLog(client)
            self.xlogs[client] = log
        return log

    def knows(self, client: ClientId) -> bool:
        return client in self.seqnums

    def add_client(self, client: ClientId, balance: int = 0) -> None:
        if client in self.seqnums:
            raise ValueError(f"client {client!r} already registered")
        self.balances[client] = balance
        self.seqnums[client] = 0
        self.xlogs[client] = ExclusiveLog(client)

    def credit(self, client: ClientId, amount: int) -> None:
        self.balances[client] = self.balances.get(client, 0) + amount

    def settle_full(self, payment: Payment) -> None:
        spender = payment.spender
        self.balances[spender] = (
            self.balances.get(spender, 0) - payment.amount
        )
        self.credit(payment.beneficiary, payment.amount)
        self.seqnums[spender] = self.seqnums.get(spender, 0) + 1
        self.xlog(spender).append(payment)

    def settle_spend_only(self, payment: Payment) -> None:
        spender = payment.spender
        self.balances[spender] = (
            self.balances.get(spender, 0) - payment.amount
        )
        self.seqnums[spender] = self.seqnums.get(spender, 0) + 1
        self.xlog(spender).append(payment)

    def try_settle_spend(self, payment: Payment) -> bool:
        spender = payment.spender
        if self.balances.get(spender, 0) < payment.amount:
            return False
        self.settle_spend_only(payment)
        return True

    def total_balance(self) -> int:
        return sum(self.balances.values())

    def snapshot(self) -> Tuple[Tuple[ClientId, int, int], ...]:
        return tuple(
            (
                client,
                self.balances.get(client, 0),
                self.seqnums.get(client, 0),
            )
            for client in sorted(self.seqnums, key=repr)
        )

    def clients(self) -> Iterable[ClientId]:
        return self.seqnums.keys()
