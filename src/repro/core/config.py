"""Configuration shared by the Astro systems and the baseline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..brb.batching import DEFAULT_BATCH_SIZE
from ..brb.quorums import max_faulty, validate_system_size

__all__ = ["AstroConfig"]


@dataclass
class AstroConfig:
    """Parameters of one Astro deployment (one shard unless noted).

    Defaults match the paper's setup: N = 3f+1 replicas (§VI-A), batches
    of 256 payments (§VI-A), t2.medium-like resources (2 vCores, 30 MiB/s
    — set on the simulated nodes).
    """

    num_replicas: int = 4
    #: Byzantine fault threshold; derived as (n-1)//3 when omitted.
    f: Optional[int] = None
    batch_size: int = DEFAULT_BATCH_SIZE
    #: Maximum time a payment waits for its batch to fill.  50 ms trades a
    #: little latency for much better amortization of per-batch signature
    #: work when client load is spread over many representatives.
    batch_delay: float = 0.05
    #: CPU time to apply one settled payment (balance/sn/xlog updates).
    settle_cost: float = 1.5e-6
    #: CPU time to ingest one client request at the representative
    #: (deserialize + authenticate client data, connection handling,
    #: §VI-B).  Calibrated against the paper's N=4 anchors.
    ingest_cost: float = 35e-6
    #: CPU time to produce a client confirmation.
    confirm_cost: float = 3e-6
    #: Astro II only: number of shards (§V).
    num_shards: int = 1
    #: Astro II only: CREDIT transport-coalescing window (seconds).  0
    #: (default) unicasts every CREDIT sub-batch right after the BRB
    #: delivery that settled it, exactly the paper's Listing 9 — up to N-1
    #: ``CreditMessage``s per replica per delivered batch, O(N²) credit
    #: messages per batch round.  > 0 buffers the signed per-delivery
    #: messages per beneficiary representative and ships one
    #: ``CreditBundle`` per (settling replica → representative) pair per
    #: window, amortizing the per-message envelope (``MESSAGE_OVERHEAD``,
    #: ``SEND_OVERHEAD``, wire headers) across its sub-batches.  Sub-batch
    #: composition, digests, and signatures are *unchanged* — they remain
    #: per-delivery, a pure function of the origin's batch stream, so
    #: every settler signs bit-identical digests and certificate minting
    #: is unaffected (merging sub-batch content across deliveries would
    #: anchor the cut points to local delivery times, which diverge under
    #: pair-varying WAN latency and leave f+1 CREDITs never matching).
    #: Bounded staleness: a credit waits at most this long before its
    #: CREDIT leaves, so dependency certificates lag by at most one window.
    credit_coalesce_delay: float = 0.0
    #: Maximum broadcast batches a representative keeps in flight;
    #: additional batches queue locally (flow control / backpressure).
    max_inflight_batches: int = 16
    #: Astro II only: re-ACK byte-identical duplicate PREPAREs in the
    #: signed BRB.  Needed by live clusters running with persistence (a
    #: recovered broadcaster relaunches pre-crash batches and must be
    #: able to re-collect its ACK quorum); off by default so simulator
    #: message flows stay byte-identical.
    brb_resend_acks: bool = False

    def __post_init__(self) -> None:
        if self.f is None:
            self.f = max_faulty(self.num_replicas)
        validate_system_size(self.num_replicas, self.f)
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.credit_coalesce_delay < 0:
            raise ValueError(
                f"credit_coalesce_delay must be >= 0, "
                f"got {self.credit_coalesce_delay}"
            )

    @property
    def quorum(self) -> int:
        return 2 * self.f + 1
