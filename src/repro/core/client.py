"""Client-side logic (Listing 1).

A client holds her own sequence counter, creates payments, and submits
them to her representative over an authenticated channel.  Clients are
deliberately lightweight: they keep no replicated state and connect to a
single replica (unlike the consensus baseline, whose clients connect to
all replicas — §VI-B).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..sim.events import Simulator
from ..sim.network import Network
from ..sim.node import Node
from .config import AstroConfig
from .messages import SUBMIT_BYTES, ClientConfirm, ClientSubmit
from .payment import ClientId, Payment

__all__ = ["ClientNode"]

#: Called on confirmation: ``fn(payment, latency_seconds)``.
ConfirmCallback = Callable[[Payment, float], None]


class ClientNode(Node):
    """A client running as a simulated process.

    Implements Listing 1: ``pay`` assembles the payment, increments the
    local sequence number, and sends it to the representative.  On
    settlement the representative answers with a confirmation, from which
    end-to-end latency is measured.
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        client_id: ClientId,
        network: Network,
        representative: int,
        config: AstroConfig,
        on_confirm: Optional[ConfirmCallback] = None,
    ) -> None:
        super().__init__(sim, node_id, network)
        self.client_id = client_id
        self.representative = representative
        self.config = config
        self.on_confirm = on_confirm
        self._next_seq = 1
        self._submit_times: Dict[int, float] = {}
        self.confirmed_count = 0
        self.on(ClientConfirm, self._on_confirm_msg)

    def pay(self, beneficiary: ClientId, amount: int) -> Payment:
        """Create and submit the next payment (Listing 1)."""
        payment = Payment(
            self.client_id,
            self._next_seq,
            beneficiary,
            amount,
            submitted_at=self.sim.now,
        )
        self._next_seq += 1
        self._submit_times[payment.seq] = self.sim.now
        self.send(
            self.representative,
            ClientSubmit(payment),
            size=SUBMIT_BYTES,
            recv_cost=self.config.ingest_cost,
        )
        return payment

    def _on_confirm_msg(self, src: int, message: ClientConfirm) -> None:
        submitted = self._submit_times.pop(message.payment.seq, None)
        if submitted is None:
            return
        self.confirmed_count += 1
        if self.on_confirm is not None:
            self.on_confirm(message.payment, self.sim.now - submitted)

    @property
    def next_seq(self) -> int:
        return self._next_seq

    @property
    def in_flight(self) -> int:
        """Submitted payments not yet confirmed."""
        return len(self._submit_times)
