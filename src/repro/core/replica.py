"""Common machinery of Astro replicas (both variants).

A replica (i) ingests payments from the clients it represents, (ii)
broadcasts them in batches through a BRB layer, and (iii) approves and
settles every payment delivered by the broadcast (Listings 2–4).  The two
variants differ in the broadcast protocol and in settle semantics; this
base class holds everything else: batching with flow control, the
per-client sequence-gap queue that implements approval's *wait* (Listing
3), settlement bookkeeping, and client confirmations.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from ..brb.batching import Batch, Batcher
from ..transport.endpoint import ProtocolEndpoint
from ..transport.interface import Transport
from .accounts import AccountState
from .config import AstroConfig
from .directory import Directory
from .messages import CONFIRM_BYTES, ClientConfirm, ClientSubmit
from .payment import ClientId, Payment

__all__ = ["AstroReplicaBase"]

#: Confirmation hook: ``fn(payment, settled_at_representative)``.
ConfirmFn = Callable[[Payment, float], None]


class AstroReplicaBase(ProtocolEndpoint):
    """Shared replica behaviour; concrete variants override the hooks.

    A replica is a plain protocol object over a
    :class:`~repro.transport.interface.Transport`: hand it a simulator
    :class:`~repro.sim.node.Node` and it runs in the discrete-event
    world; hand it a :class:`~repro.transport.tcp.TcpTransport` and the
    identical code serves real sockets.
    """

    #: Set by variants whose :meth:`_approve_funds` unconditionally
    #: returns True; lets the drain loop skip the call per payment.
    _approval_is_trivial = False

    def __init__(
        self,
        transport: Transport,
        config: AstroConfig,
        genesis: Dict[ClientId, int],
        directory: Directory,
    ) -> None:
        super().__init__(transport)
        self.config = config
        self.directory = directory
        #: Cached reference to the directory's client → representative
        #: dict; consulted once per payment on several hot paths.
        self._rep_map = directory.rep_map
        #: Per-payment cost constants, cached off the config object.
        self._ingest_cost = config.ingest_cost
        self._settle_cost = config.settle_cost
        self._confirm_cost = config.confirm_cost
        self.state = AccountState(genesis)
        self.batcher: Batcher[Payment] = Batcher(
            transport.clock,
            self._flush_batch,
            max_size=config.batch_size,
            max_delay=config.batch_delay,
        )
        self._broadcast_seq = 0
        self._inflight_batches = 0
        self._batch_backlog: Deque[Batch] = deque()
        #: Delivered payments waiting on approval criterion (1): their
        #: client's preceding payment (Listing 3 l.17).
        self._awaiting_seq: Dict[ClientId, Dict[int, Payment]] = {}
        #: Highest sequence number accepted from each represented client;
        #: a correct representative never broadcasts two payments with the
        #: same identifier (the Byzantine-client defense of §II).
        self._accepted_seq: Dict[ClientId, int] = {}
        self.settled_count = 0
        self.rejected: List[Payment] = []
        #: External hooks fired when this replica, acting as the spender's
        #: representative, observes a settlement (latency measurement and
        #: client notification, §III "Client notification").
        self.confirm_hooks: List[ConfirmFn] = []
        #: node id of each client's own node, when clients run as nodes.
        self.client_nodes: Dict[ClientId, int] = {}
        self.on(ClientSubmit, self._on_client_submit)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _on_client_submit(self, src: int, message: ClientSubmit) -> None:
        self.ingest(message.payment)

    def submit_local(self, payment: Payment) -> None:
        """Inject a payment as if a represented client had sent it.

        Used by load generators; charges the same ingestion CPU a real
        client request would.
        """
        self.charge(self._ingest_cost)
        self.ingest(payment)

    def ingest(self, payment: Payment) -> None:
        """Accept a client payment for broadcast.

        Only payments of clients this replica represents are accepted —
        "only the representative can broadcast outgoing payments for a
        client's xlog" (§II).
        """
        spender = payment.spender
        if self._rep_map.get(spender) != self.node_id or not self.alive:
            return
        accepted = self._accepted_seq
        expected = accepted.get(spender, 0) + 1
        if payment.seq != expected:
            # Reused or out-of-order sequence number: a correct client
            # never does this, so the submission is discarded.
            return
        accepted[spender] = payment.seq
        prepared = self._prepare_outgoing(payment)
        if prepared is not None:
            self.batcher.add(prepared)

    def _prepare_outgoing(self, payment: Payment) -> Optional[Payment]:
        """Variant hook: transform/validate a payment before batching.

        Returning ``None`` means the payment is held or dropped by the
        variant (e.g. Astro II queues underfunded payments until
        dependencies arrive).
        """
        return payment

    # ------------------------------------------------------------------
    # Broadcast with flow control
    # ------------------------------------------------------------------
    def _flush_batch(self, items: List[Payment]) -> None:
        batch = Batch(items)
        if self._inflight_batches >= self.config.max_inflight_batches:
            self._batch_backlog.append(batch)
            return
        self._launch_batch(batch)

    def _launch_batch(self, batch: Batch) -> None:
        self._broadcast_seq += 1
        self._inflight_batches += 1
        self._do_broadcast(self._broadcast_seq, batch)

    def _do_broadcast(self, seq: int, batch: Batch) -> None:
        """Variant hook: hand the batch to the BRB layer."""
        raise NotImplementedError

    def _batch_done(self) -> None:
        """Called when one of our own batches is locally delivered."""
        if self._inflight_batches > 0:
            self._inflight_batches -= 1
        while (
            self._batch_backlog
            and self._inflight_batches < self.config.max_inflight_batches
        ):
            self._launch_batch(self._batch_backlog.popleft())

    # ------------------------------------------------------------------
    # Delivery → approval (Listing 3) → settlement
    # ------------------------------------------------------------------
    def _deliver_batch(self, origin: int, batch: Batch) -> None:
        """Process a BRB-delivered batch of payments."""
        if not self.alive:
            return
        self.charge(self._settle_cost * batch.batch_items)
        # Local bindings: this loop runs once per payment per replica and
        # dominates the settle path at high offered rates.
        rep_get = self._rep_map.get
        awaiting = self._awaiting_seq
        seqnums = self.state.seqnums
        # Deduplicated in *insertion order* (dict, not set): client ids are
        # strings, and iterating a set of strings would order the drain —
        # and therefore settle/confirm timing — by the interpreter's
        # randomized hash seed, making results differ across processes.
        touched: Dict[ClientId, None] = {}
        for payment in batch.items:
            # Defense in depth: a payment may only arrive via its
            # spender's representative (§II).
            spender = payment.spender
            if rep_get(spender) != origin:
                continue
            queue = awaiting.get(spender)
            if queue is None:
                queue = awaiting[spender] = {}
            seq = payment.seq
            if seq in queue or seq <= seqnums.get(spender, 0):
                continue  # duplicate identifier: first delivery wins
            queue[seq] = payment
            touched[spender] = None
        self._drain(deque(touched), origin)
        if origin == self.node_id:
            self._batch_done()

    def _drain(self, worklist: Deque[ClientId], origin: int) -> None:
        """Settle every payment whose approval criteria now hold.

        Settling a payment may unblock others (its beneficiary can now
        afford queued spends), so this cascades via a worklist until no
        progress remains.
        """
        awaiting = self._awaiting_seq
        seqnums = self.state.seqnums
        # Variants whose approval criterion (2) never blocks (Astro II,
        # Listing 8) skip the per-payment approval call entirely.
        approve = self._approve_funds if not self._approval_is_trivial else None
        settle = self._settle
        while worklist:
            client = worklist.popleft()
            queue = awaiting.get(client)
            if not queue:
                continue
            while True:
                next_seq = seqnums.get(client, 0) + 1
                payment = queue.get(next_seq)
                if payment is None:
                    break
                if approve is not None and not approve(payment):
                    break  # criterion (2): wait for credits (Listing 3 l.18)
                queue.pop(next_seq)
                beneficiary = settle(payment)
                if beneficiary is not None:
                    worklist.append(beneficiary)
            if not queue:
                awaiting.pop(client, None)

    def _approve_funds(self, payment: Payment) -> bool:
        """Variant hook: approval criterion (2), sufficient funds."""
        raise NotImplementedError

    def _settle(self, payment: Payment) -> Optional[ClientId]:
        """Variant hook: apply the payment (Listing 4 / Listing 9).

        Returns the beneficiary to re-examine when the settle credited a
        local balance (Astro I), else ``None``.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Confirmation (§III "Client notification")
    # ------------------------------------------------------------------
    def _confirm(self, payment: Payment) -> None:
        """Notify the spender that her payment settled (we are her rep)."""
        self.charge(self._confirm_cost)
        now = self.clock.now
        for hook in self.confirm_hooks:
            hook(payment, now)
        client_node = self.client_nodes.get(payment.spender)
        if client_node is not None:
            self.send(
                client_node,
                ClientConfirm(payment, now),
                size=CONFIRM_BYTES,
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def balance_of(self, client: ClientId) -> int:
        """Settled balance, as returned to a querying client (§III)."""
        return self.state.balance(client)

    @property
    def queued_payments(self) -> int:
        """Delivered-but-unsettled payments (waiting on approval)."""
        return sum(len(queue) for queue in self._awaiting_seq.values())
