"""Common machinery of Astro replicas (both variants).

A replica (i) ingests payments from the clients it represents, (ii)
broadcasts them in batches through a BRB layer, and (iii) approves and
settles every payment delivered by the broadcast (Listings 2–4).  The two
variants differ in the broadcast protocol and in settle semantics; this
base class holds everything else: batching with flow control, the
per-client sequence-gap queue that implements approval's *wait* (Listing
3), settlement bookkeeping, and client confirmations.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple

from ..brb.batching import Batch, Batcher
from ..transport.endpoint import ProtocolEndpoint
from ..transport.interface import Transport
from .accounts import AccountState
from .config import AstroConfig
from .interning import ClientInterner
from .directory import Directory
from .messages import CONFIRM_BYTES, ClientConfirm, ClientSubmit
from .payment import ClientId, Payment
from .persistence import (
    RecoveryReport,
    ReplicaStore,
    WalCorruption,
    restore_account_state,
    snapshot_account_state,
    state_fingerprint,
)

__all__ = ["AstroReplicaBase"]

#: Confirmation hook: ``fn(payment, settled_at_representative)``.
ConfirmFn = Callable[[Payment, float], None]


class AstroReplicaBase(ProtocolEndpoint):
    """Shared replica behaviour; concrete variants override the hooks.

    A replica is a plain protocol object over a
    :class:`~repro.transport.interface.Transport`: hand it a simulator
    :class:`~repro.sim.node.Node` and it runs in the discrete-event
    world; hand it a :class:`~repro.transport.tcp.TcpTransport` and the
    identical code serves real sockets.
    """

    #: Set by variants whose :meth:`_approve_funds` unconditionally
    #: returns True; lets the drain loop skip the call per payment.
    _approval_is_trivial = False

    def __init__(
        self,
        transport: Transport,
        config: AstroConfig,
        genesis: Dict[ClientId, int],
        directory: Directory,
        interner: Optional[ClientInterner] = None,
    ) -> None:
        super().__init__(transport)
        self.config = config
        self.directory = directory
        #: Cached reference to the directory's client → representative
        #: dict; consulted once per payment on several hot paths.
        self._rep_map = directory.rep_map
        #: Per-payment cost constants, cached off the config object.
        self._ingest_cost = config.ingest_cost
        self._settle_cost = config.settle_cost
        self._confirm_cost = config.confirm_cost
        #: ``interner`` is shared by all replicas of one system when the
        #: system builds them — the ClientId ⇄ index map is then paid
        #: once per process, not once per replica.
        self.state = AccountState(genesis, interner=interner)
        self.batcher: Batcher[Payment] = Batcher(
            transport.clock,
            self._flush_batch,
            max_size=config.batch_size,
            max_delay=config.batch_delay,
        )
        self._broadcast_seq = 0
        self._inflight_batches = 0
        self._batch_backlog: Deque[Batch] = deque()
        #: Delivered payments waiting on approval criterion (1): their
        #: client's preceding payment (Listing 3 l.17).
        self._awaiting_seq: Dict[ClientId, Dict[int, Payment]] = {}
        #: Highest sequence number accepted from each represented client;
        #: a correct representative never broadcasts two payments with the
        #: same identifier (the Byzantine-client defense of §II).
        self._accepted_seq: Dict[ClientId, int] = {}
        self.settled_count = 0
        self.rejected: List[Payment] = []
        #: External hooks fired when this replica, acting as the spender's
        #: representative, observes a settlement (latency measurement and
        #: client notification, §III "Client notification").
        self.confirm_hooks: List[ConfirmFn] = []
        #: node id of each client's own node, when clients run as nodes.
        self.client_nodes: Dict[ClientId, int] = {}
        # --- durable state (live cluster only; ``None`` in simulations,
        # --- keeping every simulator code path byte-identical) ---
        self._wal: Optional[ReplicaStore] = None
        #: Per-origin highest contiguously delivered broadcast sequence.
        self._delivered_frontier: Dict[int, int] = {}
        #: Out-of-order delivered ``(origin, seq)`` above the frontier.
        self._delivered_extra: Set[Tuple[int, int]] = set()
        #: Our own batches launched but not yet BRB-delivered back to us;
        #: rebroadcast after a crash (``relaunch_pending``).
        self._launched_pending: Dict[int, Batch] = {}
        self.on(ClientSubmit, self._on_client_submit)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _on_client_submit(self, src: int, message: ClientSubmit) -> None:
        self.ingest(message.payment)

    def submit_local(self, payment: Payment) -> None:
        """Inject a payment as if a represented client had sent it.

        Used by load generators; charges the same ingestion CPU a real
        client request would.
        """
        self.charge(self._ingest_cost)
        self.ingest(payment)

    def ingest(self, payment: Payment) -> None:
        """Accept a client payment for broadcast.

        Only payments of clients this replica represents are accepted —
        "only the representative can broadcast outgoing payments for a
        client's xlog" (§II).
        """
        spender = payment.spender
        if self._rep_map.get(spender) != self.node_id or not self.alive:
            return
        accepted = self._accepted_seq
        expected = accepted.get(spender, 0) + 1
        if payment.seq != expected:
            # Reused or out-of-order sequence number: a correct client
            # never does this, so the submission is discarded.
            return
        accepted[spender] = payment.seq
        prepared = self._prepare_outgoing(payment)
        if prepared is not None:
            self.batcher.add(prepared)

    def _prepare_outgoing(self, payment: Payment) -> Optional[Payment]:
        """Variant hook: transform/validate a payment before batching.

        Returning ``None`` means the payment is held or dropped by the
        variant (e.g. Astro II queues underfunded payments until
        dependencies arrive).
        """
        return payment

    # ------------------------------------------------------------------
    # Broadcast with flow control
    # ------------------------------------------------------------------
    def _flush_batch(self, items: List[Payment]) -> None:
        batch = Batch(items)
        if self._inflight_batches >= self.config.max_inflight_batches:
            self._batch_backlog.append(batch)
            return
        self._launch_batch(batch)

    def _launch_batch(self, batch: Batch) -> None:
        self._broadcast_seq += 1
        if self._wal is not None:
            # Write-ahead: the launch is durable before any frame leaves,
            # so a crash between broadcast and delivery can rebroadcast
            # the identical batch at the identical sequence number.
            self._wal.record(("launch", self._broadcast_seq, batch))
            self._launched_pending[self._broadcast_seq] = batch
        self._inflight_batches += 1
        self._do_broadcast(self._broadcast_seq, batch)

    def _do_broadcast(self, seq: int, batch: Batch) -> None:
        """Variant hook: hand the batch to the BRB layer."""
        raise NotImplementedError

    def _batch_done(self) -> None:
        """Called when one of our own batches is locally delivered."""
        if self._inflight_batches > 0:
            self._inflight_batches -= 1
        while (
            self._batch_backlog
            and self._inflight_batches < self.config.max_inflight_batches
        ):
            self._launch_batch(self._batch_backlog.popleft())

    # ------------------------------------------------------------------
    # Delivery → approval (Listing 3) → settlement
    # ------------------------------------------------------------------
    def _deliver_batch(self, origin: int, batch: Batch) -> None:
        """Process a BRB-delivered batch of payments."""
        if not self.alive:
            return
        self.charge(self._settle_cost * batch.batch_items)
        # Local bindings: this loop runs once per payment per replica and
        # dominates the settle path at high offered rates.
        rep_get = self._rep_map.get
        awaiting = self._awaiting_seq
        seqnums = self.state.seqnums
        # Deduplicated in *insertion order* (dict, not set): client ids are
        # strings, and iterating a set of strings would order the drain —
        # and therefore settle/confirm timing — by the interpreter's
        # randomized hash seed, making results differ across processes.
        touched: Dict[ClientId, None] = {}
        for payment in batch.items:
            # Defense in depth: a payment may only arrive via its
            # spender's representative (§II).
            spender = payment.spender
            if rep_get(spender) != origin:
                continue
            queue = awaiting.get(spender)
            if queue is None:
                queue = awaiting[spender] = {}
            seq = payment.seq
            if seq in queue or seq <= seqnums.get(spender, 0):
                continue  # duplicate identifier: first delivery wins
            queue[seq] = payment
            touched[spender] = None
        self._drain(deque(touched), origin)
        if origin == self.node_id:
            self._batch_done()

    def _drain(self, worklist: Deque[ClientId], origin: int) -> None:
        """Settle every payment whose approval criteria now hold.

        Settling a payment may unblock others (its beneficiary can now
        afford queued spends), so this cascades via a worklist until no
        progress remains.
        """
        awaiting = self._awaiting_seq
        seqnums = self.state.seqnums
        # Variants whose approval criterion (2) never blocks (Astro II,
        # Listing 8) skip the per-payment approval call entirely.
        approve = self._approve_funds if not self._approval_is_trivial else None
        settle = self._settle
        while worklist:
            client = worklist.popleft()
            queue = awaiting.get(client)
            if not queue:
                continue
            while True:
                next_seq = seqnums.get(client, 0) + 1
                payment = queue.get(next_seq)
                if payment is None:
                    break
                if approve is not None and not approve(payment):
                    break  # criterion (2): wait for credits (Listing 3 l.18)
                queue.pop(next_seq)
                beneficiary = settle(payment)
                if beneficiary is not None:
                    worklist.append(beneficiary)
            if not queue:
                awaiting.pop(client, None)

    def _approve_funds(self, payment: Payment) -> bool:
        """Variant hook: approval criterion (2), sufficient funds."""
        raise NotImplementedError

    def _settle(self, payment: Payment) -> Optional[ClientId]:
        """Variant hook: apply the payment (Listing 4 / Listing 9).

        Returns the beneficiary to re-examine when the settle credited a
        local balance (Astro I), else ``None``.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Confirmation (§III "Client notification")
    # ------------------------------------------------------------------
    def _confirm(self, payment: Payment) -> None:
        """Notify the spender that her payment settled (we are her rep)."""
        self.charge(self._confirm_cost)
        now = self.clock.now
        for hook in self.confirm_hooks:
            hook(payment, now)
        client_node = self.client_nodes.get(payment.spender)
        if client_node is not None:
            self.send(
                client_node,
                ClientConfirm(payment, now),
                size=CONFIRM_BYTES,
            )

    # ------------------------------------------------------------------
    # Durable state & crash recovery (live cluster only)
    # ------------------------------------------------------------------
    def bind_persistence(self, store: ReplicaStore) -> RecoveryReport:
        """Attach a WAL/snapshot store and recover any prior state.

        Must run **before** the transport starts: replay re-executes the
        delivery path, and replayed sends (confirms, CREDITs) must fall
        on the floor rather than reach the network.  Replay lands exactly
        on the pre-crash state or raises :class:`WalCorruption`.
        """
        self._wal = store
        snapshot = store.load_snapshot()
        replay_from = 0
        if snapshot is not None:
            self._restore_snapshot(snapshot)
            replay_from = snapshot["wal_count"]
        replayed = 0
        for index, record in enumerate(store.recovery_records()):
            if index < replay_from:
                continue  # state already captured by the snapshot
            self._replay_record(record)
            replayed += 1
        self._finish_recovery()
        store.finish_recovery()
        return RecoveryReport(
            snapshot is not None, replayed, state_fingerprint(self.state)
        )

    def _replay_record(self, record: Tuple[Any, ...]) -> None:
        kind = record[0]
        if kind == "deliver":
            # Re-run the full delivery path; ``recording`` is off, so
            # nothing is re-appended and no checkpoint fires.
            self._on_brb_deliver(record[1], record[2], record[3])
        elif kind == "launch":
            seq, batch = record[1], record[2]
            if self._broadcast_seq < seq:
                self._broadcast_seq = seq
            self._launched_pending[seq] = batch
        elif kind == "fp":
            actual = state_fingerprint(self.state)
            if record[1] != actual:
                raise WalCorruption(
                    f"replica {self.node_id}: replay diverged at WAL "
                    f"fingerprint {record[1][:12]}.. (got {actual[:12]}..)"
                )
        # unknown kinds are ignored (forward compatibility)

    def _on_brb_deliver(self, origin: int, seq: int, batch: Batch) -> None:
        """Variant hook: BRB delivery entry point (replayed verbatim)."""
        raise NotImplementedError

    def _wal_deliver(self, origin: int, seq: int, batch: Batch) -> bool:
        """Frontier dedup + durable record for one BRB delivery.

        Returns ``False`` when ``(origin, seq)`` was already applied —
        the unified idempotency guard covering WAL replay, catch-up
        imports, and stale frames a reconnecting peer redelivers.
        Only called when persistence is bound.
        """
        if not self._note_delivered(origin, seq):
            return False
        self._wal.record(("deliver", origin, seq, batch))
        if origin == self.node_id:
            self._launched_pending.pop(seq, None)
        return True

    def _note_delivered(self, origin: int, seq: int) -> bool:
        front = self._delivered_frontier.get(origin, 0)
        if seq <= front or (origin, seq) in self._delivered_extra:
            return False
        if seq == front + 1:
            front += 1
            extra = self._delivered_extra
            while (origin, front + 1) in extra:
                extra.discard((origin, front + 1))
                front += 1
            self._delivered_frontier[origin] = front
        else:
            self._delivered_extra.add((origin, seq))
        return True

    def _wal_checkpoint(self) -> None:
        """Periodic fingerprint self-check + snapshot, driven by record
        count.  No-ops during replay (``recording`` is off)."""
        store = self._wal
        if store.fingerprint_due():
            store.record_fingerprint(state_fingerprint(self.state))
        if store.snapshot_due():
            store.write_snapshot(self._snapshot_data())

    def _snapshot_data(self) -> Dict[str, Any]:
        """Picklable capture of everything replay cannot reconstruct."""
        return {
            "fingerprint": state_fingerprint(self.state),
            "account": snapshot_account_state(self.state),
            "settled_count": self.settled_count,
            "rejected": list(self.rejected),
            "broadcast_seq": self._broadcast_seq,
            "launched_pending": dict(self._launched_pending),
            "frontier": dict(self._delivered_frontier),
            "extra": frozenset(self._delivered_extra),
            "awaiting": {c: dict(q) for c, q in self._awaiting_seq.items()},
            "accepted_seq": dict(self._accepted_seq),
        }

    def _restore_snapshot(self, data: Dict[str, Any]) -> None:
        restore_account_state(self.state, data["account"])
        self.settled_count = data["settled_count"]
        self.rejected = list(data["rejected"])
        self._broadcast_seq = data["broadcast_seq"]
        self._launched_pending = dict(data["launched_pending"])
        self._delivered_frontier = dict(data["frontier"])
        self._delivered_extra = set(data["extra"])
        self._awaiting_seq = {c: dict(q) for c, q in data["awaiting"].items()}
        self._accepted_seq = dict(data["accepted_seq"])
        if data["fingerprint"] != state_fingerprint(self.state):
            raise WalCorruption(
                f"replica {self.node_id}: snapshot fingerprint mismatch"
            )

    def _finish_recovery(self) -> None:
        """Post-replay fixups (variants extend this).

        Marks everything already applied as delivered in the BRB layer —
        stale frames redelivered by reconnecting peers are then dropped
        cheaply and FIFO drains skip imported sequence numbers — and
        rebuilds a conservative ``_accepted_seq`` so a client retrying an
        already-broadcast payment cannot create a duplicate identifier.
        """
        mark = self.brb.mark_delivered
        for origin, front in self._delivered_frontier.items():
            for seq in range(1, front + 1):
                mark(origin, seq)
        for origin, seq in self._delivered_extra:
            mark(origin, seq)
        accepted = self._accepted_seq
        rep_get = self._rep_map.get
        me = self.node_id
        for client, seq in self.state.seqnums.items():
            if seq > 0 and rep_get(client) == me and accepted.get(client, 0) < seq:
                accepted[client] = seq
        for batch in self._launched_pending.values():
            for payment in batch.items:
                spender = payment.spender
                if rep_get(spender) == me and accepted.get(spender, 0) < payment.seq:
                    accepted[spender] = payment.seq
        for client, queue in self._awaiting_seq.items():
            if rep_get(client) == me and queue:
                top = max(queue)
                if accepted.get(client, 0) < top:
                    accepted[client] = top

    def relaunch_pending(self) -> List[int]:
        """Rebroadcast batches launched but never delivered pre-crash.

        Run *after* catch-up: a batch that did complete at the peers
        arrives via import (which pops it from ``_launched_pending``), so
        only genuinely undelivered batches are rebroadcast — at their
        original sequence numbers, with identical content, which the
        signed BRB's re-ACK path (``resend_acks``) completes.
        """
        seqs = sorted(self._launched_pending)
        for seq in seqs:
            self._inflight_batches += 1
            self._do_broadcast(seq, self._launched_pending[seq])
        return seqs

    def import_batch(self, origin: int, seq: int, batch: Batch) -> bool:
        """Apply a batch fetched from a peer's WAL (catch-up).

        Goes through the normal delivery path with recording on, so the
        import itself is durable, then marks the BRB instance delivered.
        Returns ``False`` for duplicates.
        """
        front = self._delivered_frontier.get(origin, 0)
        if seq <= front or (origin, seq) in self._delivered_extra:
            return False
        self._on_brb_deliver(origin, seq, batch)
        self.brb.mark_delivered(origin, seq)
        return True

    @property
    def delivered_frontier(self) -> Dict[int, int]:
        return dict(self._delivered_frontier)

    @property
    def delivered_extra(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(sorted(self._delivered_extra))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def balance_of(self, client: ClientId) -> int:
        """Settled balance, as returned to a querying client (§III)."""
        return self.state.balance(client)

    @property
    def queued_payments(self) -> int:
        """Delivered-but-unsettled payments (waiting on approval)."""
        return sum(len(queue) for queue in self._awaiting_seq.values())
