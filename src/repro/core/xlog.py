"""Exclusive logs — the paper's core abstraction (§II).

An xlog is an append-only log of the outgoing payments of exactly one
client, ordered by the sequence numbers the client herself assigns.  Only
the owner may append (enforced here structurally), which is the property
that lets Astro replicate xlogs with broadcast instead of consensus: there
are never concurrent appends to one log.

Storing the full log (rather than just balance + sequence number) is what
enables auditability and reconfiguration (§II, §A).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from .payment import ClientId, Payment

__all__ = ["ExclusiveLog", "XlogViolation"]


class XlogViolation(Exception):
    """An append that would violate xlog exclusivity or ordering."""


class ExclusiveLog:
    """Append-only, gap-free log of one client's outgoing payments."""

    __slots__ = ("owner", "_entries")

    def __init__(self, owner: ClientId) -> None:
        self.owner = owner
        self._entries: List[Payment] = []

    def append(self, payment: Payment) -> None:
        """Append the owner's next payment.

        Raises :class:`XlogViolation` if the payment belongs to a
        different spender or does not carry the next sequence number —
        both indicate a bug in the replica, not adversarial input, since
        replicas validate before appending.
        """
        if payment.spender != self.owner:
            raise XlogViolation(
                f"payment by {payment.spender!r} appended to xlog of {self.owner!r}"
            )
        expected = len(self._entries) + 1
        if payment.seq != expected:
            raise XlogViolation(
                f"xlog of {self.owner!r} expected seq {expected}, got {payment.seq}"
            )
        self._entries.append(payment)

    @property
    def last_seq(self) -> int:
        """Sequence number of the latest entry (0 when empty)."""
        return len(self._entries)

    def entries(self) -> Tuple[Payment, ...]:
        return tuple(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Payment]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> Payment:
        return self._entries[index]

    def is_prefix_of(self, other: "ExclusiveLog") -> bool:
        """True if this log is a (possibly equal) prefix of ``other``.

        Correct replicas' copies of the same xlog are always related by
        prefix — the consistency condition tests assert.
        """
        if self.owner != other.owner or len(self) > len(other):
            return False
        return all(mine == theirs for mine, theirs in zip(self._entries, other._entries))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ExclusiveLog owner={self.owner!r} len={len(self)}>"
