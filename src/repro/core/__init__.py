"""Astro's payment core — the paper's primary contribution.

Exclusive logs, the broadcast-based payment protocol (Listings 1–4), the
dependency mechanism of Astro II (Listings 6–10), and asynchronous
sharding (§V).
"""

from .accounts import AccountState, DictAccountState
from .astro1 import Astro1Replica
from .interning import ClientInterner
from .astro2 import Astro2Replica
from .client import ClientNode
from .config import AstroConfig
from .dependencies import (
    CreditMessage,
    DependencyCertificate,
    DependencyCollector,
    certificate_wire_bytes,
    credit_content,
    subbatch_digest_of,
    verify_certificate,
)
from .directory import Directory
from .messages import BalanceQuery, BalanceReply, ClientConfirm, ClientSubmit
from .payment import ClientId, Payment, PaymentId
from .replica import AstroReplicaBase
from .system import Astro1System, Astro2System
from .xlog import ExclusiveLog, XlogViolation

__all__ = [
    "AccountState",
    "DictAccountState",
    "ClientInterner",
    "Astro1Replica",
    "Astro2Replica",
    "ClientNode",
    "AstroConfig",
    "CreditMessage",
    "DependencyCertificate",
    "DependencyCollector",
    "certificate_wire_bytes",
    "credit_content",
    "subbatch_digest_of",
    "verify_certificate",
    "Directory",
    "BalanceQuery",
    "BalanceReply",
    "ClientConfirm",
    "ClientSubmit",
    "ClientId",
    "Payment",
    "PaymentId",
    "AstroReplicaBase",
    "Astro1System",
    "Astro2System",
    "ExclusiveLog",
    "XlogViolation",
]
