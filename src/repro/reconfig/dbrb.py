"""Dynamic Byzantine Reliable Broadcast (Appendix A-C, simplified).

DBRB [42] lets Astro I keep broadcasting across reconfigurations: a
broadcast started in view v still delivers at every correct member of the
final installed view.  The full protocol is an independent publication;
following the appendix's framing we provide the *behavioural* version used
by Astro: a Bracha-style BRB whose instances are tagged with views and are
re-emitted into newly installed views, so delivery survives membership
changes.  ``QDBRB`` — the totality-free variant suitable for Astro II — is
obtained by dropping the final all-to-all step (here: the READY
amplification round), exactly as described in §A-C.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Set, Tuple

from ..crypto import costs
from ..crypto.hashing import digest
from ..sim.node import Node
from .views import View

__all__ = ["DynamicBroadcast"]

_HEADER = 48


class _DbrbMessage:
    __slots__ = ("kind", "view_number", "origin", "seq", "payload", "size")

    def __init__(self, kind: str, view_number: int, origin: int, seq: int,
                 payload: Any, size: int) -> None:
        self.kind = kind
        self.view_number = view_number
        self.origin = origin
        self.seq = seq
        self.payload = payload
        self.size = size


class _DbrbInstance:
    __slots__ = ("echoes", "readys", "echo_sent", "ready_sent", "delivered")

    def __init__(self) -> None:
        self.echoes: Dict[Any, Set[int]] = {}
        self.readys: Dict[Any, Set[int]] = {}
        self.echo_sent = False
        self.ready_sent = False
        self.delivered = False


class DynamicBroadcast:
    """View-aware Bracha BRB endpoint.

    Wire-compatible with the static protocol inside one view; on a view
    change (``install_view``), undelivered instances restart their quorum
    collection in the new view so that joiners participate and leavers
    stop counting toward quorums.
    """

    def __init__(
        self,
        node: Node,
        view: View,
        deliver: Callable[[int, int, Any], None],
        totality: bool = True,
    ) -> None:
        self.node = node
        self.view = view
        self.deliver_fn = deliver
        #: False selects QDBRB (no READY amplification → no totality).
        self.totality = totality
        self._instances: Dict[Tuple[int, int, int], _DbrbInstance] = {}
        #: (origin, seq) -> payload, for re-broadcast across views.
        self._undelivered_own: Dict[int, Any] = {}
        self._delivered_ids: Set[Tuple[int, int]] = set()
        self.delivered_count = 0
        node.on(_DbrbMessage, self._on_message)

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def broadcast(self, seq: int, payload: Any, payload_bytes: int = 100) -> None:
        self._undelivered_own[seq] = (payload, payload_bytes)
        self._send("prepare", self.view.number, self.node.node_id, seq,
                   payload, _HEADER + payload_bytes)

    def install_view(self, new_view: View) -> None:
        """Adopt a newly installed view; restart undelivered instances."""
        if new_view.number <= self.view.number:
            return
        self.view = new_view
        self.retry_pending()

    def retry_pending(self) -> None:
        """Re-emit our undelivered broadcasts in the current view.

        DBRB retransmits pending instances after reconnection or view
        installation; callers invoke this when connectivity returns
        (idempotent — delivered instances are never re-sent).
        """
        for seq, (payload, payload_bytes) in list(self._undelivered_own.items()):
            self._send("prepare", self.view.number, self.node.node_id, seq,
                       payload, _HEADER + payload_bytes)

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def _send(self, kind: str, view_number: int, origin: int, seq: int,
              payload: Any, size: int) -> None:
        message = _DbrbMessage(kind, view_number, origin, seq, payload, size)
        cost = costs.MESSAGE_OVERHEAD + costs.MAC_VERIFY + costs.PER_BYTE_CPU * size
        # Fan-out order must be a pure function of the view's *content*:
        # iterating the set directly would order sends by hash-table
        # internals (insertion/resize history), not by membership.
        for member in sorted(self.view.members):
            if member == self.node.node_id:
                continue
            self.node.send(member, message, size=size, recv_cost=cost,
                           send_cost=costs.SEND_OVERHEAD)
        self._apply(self.node.node_id, message)

    def _on_message(self, src: int, message: _DbrbMessage) -> None:
        self._apply(src, message)

    def _apply(self, src: int, message: _DbrbMessage) -> None:
        if message.view_number != self.view.number:
            # Stale-view traffic is ignored; senders re-emit after they
            # install the current view.
            return
        if (message.origin, message.seq) in self._delivered_ids:
            return
        key = (message.view_number, message.origin, message.seq)
        instance = self._instances.setdefault(key, _DbrbInstance())
        payload_key = digest(message.payload)
        if message.kind == "prepare":
            if message.origin != src or instance.echo_sent:
                return
            instance.echo_sent = True
            self._send("echo", message.view_number, message.origin,
                       message.seq, message.payload, message.size)
        elif message.kind == "echo":
            voters = instance.echoes.setdefault(payload_key, set())
            voters.add(src)
            if (
                len(voters & self.view.members) >= self.view.quorum
                and not instance.ready_sent
            ):
                instance.ready_sent = True
                self._send("ready", message.view_number, message.origin,
                           message.seq, message.payload, message.size)
        elif message.kind == "ready":
            voters = instance.readys.setdefault(payload_key, set())
            voters.add(src)
            live = voters & self.view.members
            if (
                self.totality
                and len(live) >= self.view.f + 1
                and not instance.ready_sent
            ):
                instance.ready_sent = True
                self._send("ready", message.view_number, message.origin,
                           message.seq, message.payload, message.size)
            if len(live) >= 2 * self.view.f + 1 and not instance.delivered:
                instance.delivered = True
                self._delivered_ids.add((message.origin, message.seq))
                if message.origin == self.node.node_id:
                    self._undelivered_own.pop(message.seq, None)
                self.delivered_count += 1
                self.deliver_fn(message.origin, message.seq, message.payload)
