"""Views: numbered replica sets (Appendix A).

Throughout a system's lifetime each correct replica passes through a
sequence of numbered views; a view is the set of replicas a replica
considers to constitute the system.  Installed views form a sequence —
the invariant the membership protocol maintains and tests assert.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple

from ..brb.quorums import byzantine_quorum, max_faulty

__all__ = ["View"]


class View:
    """An immutable numbered membership set."""

    __slots__ = ("number", "members")

    def __init__(self, number: int, members: Iterable[int]) -> None:
        self.number = number
        self.members: FrozenSet[int] = frozenset(members)
        if not self.members:
            raise ValueError("a view must have at least one member")

    @property
    def n(self) -> int:
        return len(self.members)

    @property
    def f(self) -> int:
        return max_faulty(self.n)

    @property
    def quorum(self) -> int:
        return byzantine_quorum(self.n, self.f)

    def with_member(self, node_id: int) -> "View":
        """Successor view including ``node_id`` (a join)."""
        if node_id in self.members:
            raise ValueError(f"node {node_id} already a member")
        return View(self.number + 1, self.members | {node_id})

    def without_member(self, node_id: int) -> "View":
        """Successor view excluding ``node_id`` (a leave)."""
        if node_id not in self.members:
            raise ValueError(f"node {node_id} not a member")
        if len(self.members) == 1:
            raise ValueError("cannot remove the last member")
        return View(self.number + 1, self.members - {node_id})

    def canonical(self) -> Tuple:
        return ("view", self.number, tuple(sorted(self.members)))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, View)
            and self.number == other.number
            and self.members == other.members
        )

    def __hash__(self) -> int:
        return hash((self.number, self.members))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<View #{self.number} n={self.n}>"
