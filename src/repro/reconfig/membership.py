"""Consensusless membership reconfiguration (Appendix A).

Implements the join/leave protocol sketched in §A-A, adapting FreeStore's
consensus-free reconfiguration to the Byzantine model with quorum systems:

1. A joining (or leaving) replica broadcasts a JOIN/LEAVE request to the
   members of its current view estimate.
2. Each member signs and broadcasts a proposal for the successor view.
3. On a Byzantine quorum of matching proposals a member *installs* the new
   view, resumes payment processing in it, and sends the joiner a
   VIEW-INSTALLED notice together with a state snapshot (all xlogs — the
   paper's state-transfer protocol "simply consists of sending all xlogs
   to the joining replica").
4. The joiner becomes active on a quorum of VIEW-INSTALLED notices (so the
   new view is durable) plus at least one state snapshot.

The measured join latency — request send to active — is what Fig. 8
reports.  The protocol processes one reconfiguration at a time per view
(the paper measures sequential joins for the same reason); batched joins
are supported by re-requesting in the installed view.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..crypto import costs
from ..crypto.keys import Keychain, KeyPair, replica_owner
from ..crypto.signatures import Signature, sign, verify
from ..sim.events import Simulator
from ..sim.network import Network
from ..sim.node import Node
from .views import View

__all__ = ["ReconfigReplica", "JoinRequest", "ViewProposal", "ViewInstalled"]

_HEADER = 48


class JoinRequest:
    __slots__ = ("joiner", "view_number")

    def __init__(self, joiner: int, view_number: int) -> None:
        self.joiner = joiner
        self.view_number = view_number


class LeaveRequest:
    __slots__ = ("leaver", "view_number")

    def __init__(self, leaver: int, view_number: int) -> None:
        self.leaver = leaver
        self.view_number = view_number


class ViewProposal:
    """A member's signed endorsement of a successor view."""

    __slots__ = ("view", "signature")

    def __init__(self, view: View, signature: Signature) -> None:
        self.view = view
        self.signature = signature


class ViewInstalled:
    """Notice to the joiner that a member installed the view; carries the
    state snapshot (sized by the xlog volume it transfers)."""

    __slots__ = ("view", "state_bytes")

    def __init__(self, view: View, state_bytes: int) -> None:
        self.view = view
        self.state_bytes = state_bytes


class ReconfigReplica(Node):
    """A replica participating in consensusless reconfiguration.

    Holds the current installed view, pauses processing while a newer view
    is being agreed (per §A-A), and serves state to joiners.  Payment-layer
    integration is intentionally decoupled: callers may register
    ``on_pause`` / ``on_resume`` / ``on_install`` hooks.
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        network: Network,
        initial_view: View,
        keychain: Keychain,
        key: KeyPair,
        state_bytes: int = 10_000,
    ) -> None:
        super().__init__(sim, node_id, network)
        self.keychain = keychain
        self.key = key
        self.view = initial_view
        self.active = node_id in initial_view.members
        #: Size of the xlog state this replica would transfer to a joiner.
        self.state_bytes = state_bytes
        self.paused = False
        self.installed_history: List[View] = [initial_view] if self.active else []
        self._proposals: Dict[Tuple, Dict[int, Signature]] = {}
        self._installed_acks: Dict[Tuple, Set[int]] = {}
        self._pending_view: Optional[View] = None
        self._got_state = False
        self._join_started_at: Optional[float] = None
        self.join_latency: Optional[float] = None
        self.on_pause: Optional[Callable[[], None]] = None
        self.on_resume: Optional[Callable[[View], None]] = None
        self.on(JoinRequest, self._on_join_request)
        self.on(LeaveRequest, self._on_leave_request)
        self.on(ViewProposal, self._on_proposal)
        self.on(ViewInstalled, self._on_installed)

    # ------------------------------------------------------------------
    # Joining / leaving (called on the joining/leaving node)
    # ------------------------------------------------------------------
    def request_join(self) -> None:
        """Ask the current view to admit this replica."""
        if self.active:
            raise RuntimeError(f"node {self.node_id} is already a member")
        self._join_started_at = self.sim.now
        request = JoinRequest(self.node_id, self.view.number)
        # All membership fan-outs iterate members in sorted order: send
        # order must derive from the view's content, never from set
        # iteration (an artifact of hash-table internals).
        for member in sorted(self.view.members):
            self.send(
                member,
                request,
                size=_HEADER + 16,
                recv_cost=costs.MESSAGE_OVERHEAD + costs.ECDSA_VERIFY,
            )

    def request_leave(self) -> None:
        if not self.active:
            raise RuntimeError(f"node {self.node_id} is not a member")
        request = LeaveRequest(self.node_id, self.view.number)
        for member in sorted(self.view.members):
            if member == self.node_id:
                continue
            self.send(
                member,
                request,
                size=_HEADER + 16,
                recv_cost=costs.MESSAGE_OVERHEAD + costs.ECDSA_VERIFY,
            )
        self._propose(self.view.without_member(self.node_id))

    # ------------------------------------------------------------------
    # Member side
    # ------------------------------------------------------------------
    def _on_join_request(self, src: int, message: JoinRequest) -> None:
        if not self.active or message.view_number != self.view.number:
            return
        if message.joiner in self.view.members:
            return
        self._propose(self.view.with_member(message.joiner))

    def _on_leave_request(self, src: int, message: LeaveRequest) -> None:
        if not self.active or message.view_number != self.view.number:
            return
        if message.leaver not in self.view.members or message.leaver == self.node_id:
            return
        self._propose(self.view.without_member(message.leaver))

    def _propose(self, new_view: View) -> None:
        if new_view.number != self.view.number + 1:
            return
        if not self.paused:
            # Pause payment processing while the next view is agreed (§A-A).
            self.paused = True
            if self.on_pause is not None:
                self.on_pause()
        self.cpu.occupy(costs.ECDSA_SIGN)
        signature = sign(self.key, new_view.canonical())
        proposal = ViewProposal(new_view, signature)
        for member in sorted(self.view.members | new_view.members):
            if member == self.node_id:
                continue
            self.send(
                member,
                proposal,
                size=_HEADER + 32 + 8 * new_view.n + costs.SIGNATURE_BYTES,
                recv_cost=costs.MESSAGE_OVERHEAD + costs.ECDSA_VERIFY,
            )
        self._record_proposal(self.node_id, proposal)

    def _on_proposal(self, src: int, message: ViewProposal) -> None:
        if not verify(self.keychain, message.signature, message.view.canonical()):
            return
        if message.signature.signer != replica_owner(src):
            return
        self._record_proposal(src, message)

    def _record_proposal(self, src: int, message: ViewProposal) -> None:
        new_view = message.view
        if new_view.number <= self.view.number and self.active:
            return
        key = new_view.canonical()
        bucket = self._proposals.setdefault(key, {})
        bucket[src] = message.signature
        # Quorum of the *previous* view must endorse the change.
        if len(bucket) < self.view.quorum:
            return
        if self.node_id in new_view.members and self.active:
            self._install(new_view)
        elif self.node_id in new_view.members and not self.active:
            # We are the joiner: remember endorsements; activation happens
            # on VIEW-INSTALLED notices (which carry the state).
            self._record_endorsed(new_view)
        elif self.active:
            # We are leaving: install to stay consistent, then retire.
            self._install(new_view)
            self.active = False

    def _install(self, new_view: View) -> None:
        if new_view.number <= self.view.number:
            return
        newcomers = new_view.members - self.view.members
        self.view = new_view
        self.installed_history.append(new_view)
        self.paused = False
        if self.on_resume is not None:
            self.on_resume(new_view)
        # Notify peers; newcomers additionally receive the state snapshot
        # (all xlogs, §A-A "Our state transfer protocol simply consists of
        # sending all xlogs to the joining replica").
        for member in sorted(new_view.members):
            if member == self.node_id:
                continue
            state = self.state_bytes if member in newcomers else 0
            notice = ViewInstalled(new_view, state)
            self.send(
                member,
                notice,
                size=_HEADER + state,
                recv_cost=(
                    costs.MESSAGE_OVERHEAD + costs.PER_BYTE_CPU * state
                ),
            )

    # ------------------------------------------------------------------
    # Joiner side
    # ------------------------------------------------------------------
    def _record_endorsed(self, new_view: View) -> None:
        # Track which view we are waiting to have installed.
        self._pending_view = new_view

    def _on_installed(self, src: int, message: ViewInstalled) -> None:
        if self.active:
            # Already-active members use install notices only as catch-up.
            if message.view.number > self.view.number:
                self._install_from_notice(message.view)
            return
        if self.node_id not in message.view.members:
            return
        key = message.view.canonical()
        acks = self._installed_acks.setdefault(key, set())
        acks.add(src)
        self._got_state = True
        if len(acks) >= message.view.f + 1:
            self.view = message.view
            self.active = True
            self.paused = False
            self.installed_history.append(message.view)
            if self._join_started_at is not None:
                self.join_latency = self.sim.now - self._join_started_at
                self._join_started_at = None
            if self.on_resume is not None:
                self.on_resume(message.view)

    def _install_from_notice(self, new_view: View) -> None:
        self.view = new_view
        self.installed_history.append(new_view)
        self.paused = False
        if self.on_resume is not None:
            self.on_resume(new_view)
