"""Asynchronous reconfiguration (Appendix A).

Consensusless membership changes for Astro (views, join/leave protocol,
state transfer), the dynamic broadcast layer (DBRB/QDBRB), and the
consensus-based reconfiguration baseline used for Fig. 8.
"""

from .consensus_reconfig import measure_consensus_join_latency
from .dbrb import DynamicBroadcast
from .membership import JoinRequest, ReconfigReplica, ViewInstalled, ViewProposal
from .views import View

__all__ = [
    "measure_consensus_join_latency",
    "DynamicBroadcast",
    "JoinRequest",
    "ReconfigReplica",
    "ViewInstalled",
    "ViewProposal",
    "View",
]
