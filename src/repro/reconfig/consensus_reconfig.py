"""Consensus-based reconfiguration baseline (Fig. 8's BFT-SMaRt curve).

BFT-SMaRt treats a reconfiguration as a special totally-ordered request
handled by its View Manager [14], [15]: the join request is submitted to
the leader, ordered through a full consensus instance, and only then does
the view manager notify the joiner, which must still fetch state and get
up to date.  We reproduce that path on the real consensus core of
:mod:`repro.consensus`: the join travels through PROPOSE/WRITE/ACCEPT
like any request, after which the leader ships the membership decision
plus state to the joiner.
"""

from __future__ import annotations

from typing import List, Optional

from ..consensus.config import BftConfig
from ..consensus.system import BftSystem
from ..core.payment import Payment
from ..crypto import costs

__all__ = ["measure_consensus_join_latency"]


def measure_consensus_join_latency(
    num_replicas: int,
    state_bytes: int = 10_000,
    seed: int = 0,
    config: Optional[BftConfig] = None,
) -> float:
    """Join latency at system size ``num_replicas`` (one sequential join).

    The measured interval matches the paper's definition: from the view
    manager receiving the special operation until the joiner is told it
    can start participating and should get up to date (§A-B) — i.e. one
    ordered consensus decision plus the view-manager round and state
    shipment to the joiner.
    """
    if config is None:
        config = BftConfig(num_replicas=num_replicas, batch_delay=0.001)
    system = BftSystem(num_replicas=num_replicas, genesis={"reconfig": 1}, seed=seed)
    start = system.sim.now
    done: List[float] = []

    def on_confirm(payment: Payment, latency: float) -> None:
        done.append(system.sim.now)

    system.add_confirm_hook(on_confirm)
    # The special reconfiguration request, ordered like a client request.
    system.submit("reconfig", "reconfig", 0)
    system.settle_all(max_time=60.0)
    if not done:
        raise RuntimeError("reconfiguration request was never ordered")
    ordered_at = done[0]
    # After ordering: the view manager synchronizes the new view and ships
    # state to the joiner.  BFT-SMaRt's durable state transfer [14] sends
    # the *operation log*, which the joiner replays — the dominant cost,
    # scaled by the baseline's JVM overhead factor.  Astro's snapshot
    # (send all xlogs, apply directly) avoids the replay entirely, which
    # is where Fig. 8's order-of-magnitude gap comes from.
    latency_model = system.network.latency
    leader = system.replicas[0]
    rtt = 2 * latency_model.expected(leader.node_id, num_replicas - 1)
    transfer = state_bytes / leader.link.bandwidth
    ops_in_log = state_bytes / 100  # ~100 bytes per logged payment
    replay = config.overhead_factor * ops_in_log * (
        config.request_cost + config.settle_cost
    )
    processing = (
        config.overhead_factor
        * (costs.MESSAGE_OVERHEAD * num_replicas + costs.PER_BYTE_CPU * state_bytes)
    )
    return (ordered_at - start) + rtt + transfer + replay + processing
