"""Key management for the simulated signature scheme.

Both clients and replicas hold an identifying public/secret key pair, with
replica keys distributed in advance (permissioned model, §III).  The
simulation replaces elliptic-curve math with *structural unforgeability*:
a signature embeds a token derived from the signer's secret, secrets live
only inside :class:`KeyPair` and the issuing :class:`Keychain`, and
Byzantine code in tests never receives another party's ``KeyPair`` — so a
valid signature can only originate from its claimed signer, which is the
property every protocol proof relies on.
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Dict, Hashable

__all__ = ["KeyPair", "Keychain", "CryptoError", "replica_owner", "client_owner"]


@lru_cache(maxsize=None)
def replica_owner(node_id: int) -> tuple:
    """Canonical key-owner identity for a replica node.

    Memoized: the identity tuple is requested once per signed message on
    hot paths, and the replica-id population is small and fixed.
    """
    return ("replica", node_id)


def client_owner(client_id: Hashable) -> tuple:
    """Canonical key-owner identity for a client."""
    return ("client", client_id)


class CryptoError(Exception):
    """Raised on misuse of the simulated crypto layer."""


class KeyPair:
    """A signing identity.  Holding the object = holding the secret key."""

    __slots__ = ("owner", "_secret")

    def __init__(self, owner: Hashable, secret: int) -> None:
        self.owner = owner
        self._secret = secret

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KeyPair owner={self.owner!r}>"


class Keychain:
    """Generates key pairs and verifies signatures (the 'PKI').

    One keychain per simulated system.  ``generate`` may be called once per
    owner; the keychain remembers secrets so that any party can *verify* a
    signature (public-key operation) without being able to *create* one
    (no API exposes another owner's secret).
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._secrets: Dict[Hashable, int] = {}

    def generate(self, owner: Hashable) -> KeyPair:
        if owner in self._secrets:
            raise CryptoError(f"key pair already issued for {owner!r}")
        secret = self._rng.getrandbits(64)
        self._secrets[owner] = secret
        return KeyPair(owner, secret)

    def has_key(self, owner: Hashable) -> bool:
        return owner in self._secrets

    def _secret_of(self, owner: Hashable) -> int:
        try:
            return self._secrets[owner]
        except KeyError:
            raise CryptoError(f"no key pair issued for {owner!r}") from None
