"""Simulated digital signatures (ECDSA P-256 stand-in).

Astro II's broadcast layer, CREDIT messages, and dependency certificates
are built on digital signatures (§IV-A, §V).  The scheme here provides the
two properties those protocols need:

* **unforgeability** — producing a valid :class:`Signature` for content
  ``m`` under owner ``o`` requires ``o``'s :class:`~repro.crypto.keys.KeyPair`;
* **binding** — a signature verifies only against the exact content it
  signed (any mutation is detected).

CPU costs (`~repro.crypto.costs`) are charged by the protocol layer, not
here, because cost accounting belongs to the node whose CPU performs the
operation.
"""

from __future__ import annotations

from typing import Any, Hashable

from .hashing import canonical
from .keys import Keychain, KeyPair

__all__ = ["Signature", "sign", "verify"]


def _token(secret: int, content_canonical: Any) -> int:
    """Keyed digest standing in for the ECDSA signing equation."""
    return hash((secret, content_canonical)) & 0xFFFFFFFFFFFFFFFF


class Signature:
    """A detached signature over some content by ``signer``."""

    __slots__ = ("signer", "_token")

    def __init__(self, signer: Hashable, token: int) -> None:
        self.signer = signer
        self._token = token

    def __reduce__(self):
        # Compact cross-process pickling (repro.sim.shard): two fields,
        # no slot-state dict.
        return (Signature, (self.signer, self._token))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Signature)
            and self.signer == other.signer
            and self._token == other._token
        )

    def __hash__(self) -> int:
        return hash((self.signer, self._token))

    def canonical(self) -> Any:
        return ("sig", self.signer, self._token)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Signature by {self.signer!r}>"


def sign(key: KeyPair, content: Any) -> Signature:
    """Sign ``content`` with ``key``; content must be canonicalizable."""
    return Signature(key.owner, _token(key._secret, canonical(content)))


def verify(keychain: Keychain, signature: Signature, content: Any) -> bool:
    """Check that ``signature`` is valid for ``content``.

    Returns ``False`` (never raises) for wrong content or forged tokens;
    raises :class:`~repro.crypto.keys.CryptoError` only if the claimed
    signer has no registered key, which indicates a harness bug rather
    than adversarial input.
    """
    if not isinstance(signature, Signature):
        return False
    secret = keychain._secret_of(signature.signer)
    return signature._token == _token(secret, canonical(content))
