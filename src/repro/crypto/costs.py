"""CPU cost model for cryptographic operations.

The paper's two Astro variants differ exactly in their crypto/CPU vs
message-complexity trade-off (§IV-A): Astro I uses cheap MACs but O(N²)
messages; Astro II uses ECDSA P-256 signatures (Go standard library,
§VI-A) but O(N) messages.  Simulated nodes charge these service times to
their CPU servers so that trade-off shows up in the measured numbers.

Values approximate Go ``crypto/ecdsa`` P-256 and HMAC-SHA256 on a
t2.medium vCore; absolute accuracy is unnecessary — only the relative
magnitudes (sig ≫ MAC ≫ hash) drive the reproduced shapes.
"""

from __future__ import annotations

__all__ = [
    "ECDSA_SIGN",
    "ECDSA_VERIFY",
    "MAC_COMPUTE",
    "MAC_VERIFY",
    "HASH_PER_PAYMENT",
    "MESSAGE_OVERHEAD",
    "SEND_OVERHEAD",
    "PER_BYTE_CPU",
    "SIGNATURE_BYTES",
    "MAC_BYTES",
    "HASH_BYTES",
]

#: ECDSA P-256 sign, seconds (Go stdlib ≈ 30 µs/op on one vCore).
ECDSA_SIGN = 35e-6

#: ECDSA P-256 verify, seconds (Go stdlib ≈ 90 µs/op).
ECDSA_VERIFY = 95e-6

#: HMAC-SHA256 over a small message, seconds.
MAC_COMPUTE = 1.2e-6

#: MAC verification cost equals recomputation.
MAC_VERIFY = 1.2e-6

#: SHA-256 hashing per ~100-byte payment inside a batch.
HASH_PER_PAYMENT = 0.4e-6

#: Fixed per-message CPU overhead (syscalls, dispatch).
MESSAGE_OVERHEAD = 12e-6

#: Send-side per-message CPU overhead (marshalling + syscall).
SEND_OVERHEAD = 6e-6

#: CPU time per byte for (de)serialization and copying (~0.7 GB/s/core).
PER_BYTE_CPU = 1.5e-9

#: Wire size of an ECDSA P-256 signature (r, s).
SIGNATURE_BYTES = 64

#: Wire size of an HMAC-SHA256 tag.
MAC_BYTES = 32

#: Wire size of a SHA-256 digest.
HASH_BYTES = 32
