"""Content hashing for the simulated crypto layer.

Real SHA-256 would dominate the Python interpreter's time without adding
fidelity, so digests are computed structurally: a digest is a 64-bit hash
of the canonical representation of the message content.  Within a
simulation run this is collision-free with overwhelming probability, which
is the same guarantee a real hash provides; protocols only compare digests
for equality and use them as dictionary keys, so an ``int`` digest keeps
those operations O(1).

Digests sit on the simulator's hottest path (every broadcast phase keys
its quorum state by payload digest), so this module is written for CPython
speed:

* ``digest`` consults a per-object ``cached_digest`` attribute first, so
  message objects (payments, batches, certificates) hash their content
  exactly once over their lifetime;
* ``canonical`` dispatches on exact class identity and returns tuples of
  primitives *unchanged*, avoiding the recursive re-canonicalization the
  original implementation performed on every call.
"""

from __future__ import annotations

from typing import Any

__all__ = ["canonical", "digest", "Digest"]

#: A digest is an opaque 64-bit integer; protocols only compare equality.
Digest = int

_MASK = 0xFFFFFFFFFFFFFFFF

#: Classes whose instances are their own canonical form.  Exact-class
#: membership is two dict lookups — far cheaper than an isinstance chain —
#: and covers every value that actually appears in protocol messages.
_ATOMS = frozenset({type(None), bool, int, float, str, bytes})


def canonical(value: Any) -> Any:
    """Return a hashable canonical form of ``value``.

    Supports the value types used in protocol messages: primitives,
    tuples/lists, dicts (sorted by key), frozensets, and objects exposing
    ``canonical()``.  A tuple whose elements are all primitives is its own
    canonical form and is returned without copying.
    """
    cls = value.__class__
    if cls in _ATOMS:
        return value
    if cls is tuple:
        for item in value:
            if item.__class__ not in _ATOMS:
                return tuple(canonical(v) for v in value)
        return value
    if cls is list:
        return tuple(canonical(v) for v in value)
    if cls is dict:
        return tuple(sorted((canonical(k), canonical(v)) for k, v in value.items()))
    # Uncommon cases: primitive subclasses, sets, canonicalizable objects.
    if isinstance(value, (bool, int, float, str, bytes)):
        return value
    if isinstance(value, (tuple, list)):
        return tuple(canonical(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((canonical(k), canonical(v)) for k, v in value.items()))
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(map(canonical, value), key=repr))
    method = getattr(value, "canonical", None)
    if callable(method):
        return ("obj", type(value).__name__, method())
    raise TypeError(f"cannot canonicalize {type(value).__name__}: {value!r}")


def digest(value: Any) -> Digest:
    """Collision-free (within a run) 64-bit digest of ``value``.

    Objects exposing a ``cached_digest`` attribute (payments, batches,
    dependency certificates) answer from their memoized value; everything
    else is canonicalized and hashed on the spot.
    """
    cached = getattr(value, "cached_digest", None)
    if cached is not None:
        return cached
    return hash(("digest", canonical(value))) & _MASK
