"""Content hashing for the simulated crypto layer.

Real SHA-256 would dominate the Python interpreter's time without adding
fidelity, so digests are computed structurally: a digest is a 64-bit hash
of the canonical representation of the message content.  Within a
simulation run this is collision-free with overwhelming probability, which
is the same guarantee a real hash provides; protocols only compare digests
for equality and use them as dictionary keys, so an ``int`` digest keeps
those operations O(1).
"""

from __future__ import annotations

from typing import Any

__all__ = ["canonical", "digest", "Digest"]

#: A digest is an opaque 64-bit integer; protocols only compare equality.
Digest = int

_MASK = 0xFFFFFFFFFFFFFFFF


def canonical(value: Any) -> Any:
    """Return a hashable canonical form of ``value``.

    Supports the value types used in protocol messages: primitives,
    tuples/lists, dicts (sorted by key), frozensets, and objects exposing
    ``canonical()``.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    if isinstance(value, (tuple, list)):
        return tuple(canonical(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((canonical(k), canonical(v)) for k, v in value.items()))
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(map(canonical, value), key=repr))
    method = getattr(value, "canonical", None)
    if callable(method):
        return ("obj", type(value).__name__, method())
    raise TypeError(f"cannot canonicalize {type(value).__name__}: {value!r}")


def digest(value: Any) -> Digest:
    """Collision-free (within a run) 64-bit digest of ``value``."""
    return hash(("digest", canonical(value))) & _MASK
