"""Simulated cryptography substrate.

Provides structurally unforgeable signatures and MACs plus a CPU cost
model, standing in for Go's ECDSA P-256 / HMAC implementations used by the
paper (§VI-A).  See DESIGN.md §1 for why the substitution preserves the
protocols' behaviour.
"""

from . import costs
from .hashing import Digest, canonical, digest
from .keys import CryptoError, Keychain, KeyPair, client_owner, replica_owner
from .mac import MacAuthenticator, MacTag
from .signatures import Signature, sign, verify

__all__ = [
    "costs",
    "Digest",
    "canonical",
    "digest",
    "CryptoError",
    "Keychain",
    "KeyPair",
    "client_owner",
    "replica_owner",
    "MacAuthenticator",
    "MacTag",
    "Signature",
    "sign",
    "verify",
]
