"""Message authentication codes for authenticated point-to-point links.

Astro I's Bracha broadcast relies on authenticated links via MACs rather
than signatures (§IV-A).  The simulated network already prevents sender
spoofing, so protocol correctness does not depend on this module; it
exists to (a) model the MAC CPU costs Astro I pays, and (b) let tests
exercise tag verification explicitly (e.g. a tampered-message test).
"""

from __future__ import annotations

from typing import Any, Hashable, Tuple

from .hashing import canonical
from .keys import Keychain

__all__ = ["MacAuthenticator", "MacTag"]


class MacTag:
    """An HMAC tag over content under a pairwise key."""

    __slots__ = ("pair", "_token")

    def __init__(self, pair: Tuple[Hashable, Hashable], token: int) -> None:
        self.pair = pair
        self._token = token

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MacTag)
            and self.pair == other.pair
            and self._token == other._token
        )

    def __hash__(self) -> int:
        return hash((self.pair, self._token))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MacTag pair={self.pair!r}>"


class MacAuthenticator:
    """Computes/verifies pairwise MACs using keychain-derived link keys.

    The symmetric key for link (a, b) is derived from both parties'
    secrets, so either endpoint can compute and verify tags for that link
    and nobody else can.
    """

    def __init__(self, keychain: Keychain) -> None:
        self._keychain = keychain

    def _link_key(self, a: Hashable, b: Hashable) -> int:
        first, second = sorted((a, b), key=repr)
        return hash(
            (self._keychain._secret_of(first), self._keychain._secret_of(second))
        )

    def tag(self, src: Hashable, dst: Hashable, content: Any) -> MacTag:
        pair = (src, dst)
        token = hash((self._link_key(src, dst), canonical(content)))
        return MacTag(pair, token & 0xFFFFFFFFFFFFFFFF)

    def verify(
        self, tag: MacTag, src: Hashable, dst: Hashable, content: Any
    ) -> bool:
        if not isinstance(tag, MacTag) or tag.pair != (src, dst):
            return False
        expected = hash((self._link_key(src, dst), canonical(content)))
        return tag._token == (expected & 0xFFFFFFFFFFFFFFFF)
