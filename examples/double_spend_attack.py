#!/usr/bin/env python3
"""Double-spend attack demo: why broadcast is enough (§I, §II).

A Byzantine client (colluding with her Byzantine representative) tries to
spend the same sequence number twice — payment A to Bob and a conflicting
payment A' to Carol, both numbered 1.  The broadcast layer's consistency
check guarantees at most one of them ever settles, at every correct
replica, without any consensus.

The attack is mounted at the BRB level: the equivocating representative
broadcasts two different batches for the same payment identifier.

Run:  python examples/double_spend_attack.py
"""

from repro import Astro2System, Payment
from repro.brb.batching import Batch


def main() -> None:
    genesis = {"mallory": 100, "bob": 0, "carol": 0}
    system = Astro2System(num_replicas=4, genesis=genesis, seed=7)
    mallory_rep = system.representative_of("mallory")

    # Two conflicting payments with the same identifier (mallory, 1).
    to_bob = Payment("mallory", 1, "bob", 100)
    to_carol = Payment("mallory", 1, "carol", 100)

    # The Byzantine representative bypasses its own ingest checks and
    # broadcasts each conflicting payment as a separate batch.
    batch_a = Batch([to_bob])
    batch_b = Batch([to_carol])
    mallory_rep.brb.broadcast(1, batch_a, batch_a.size_bytes)
    mallory_rep.brb.broadcast(2, batch_b, batch_b.size_bytes)

    system.settle_all()

    print("After the equivocation attempt:")
    settled_to_bob = 0
    settled_to_carol = 0
    for replica in system.replicas:
        log = replica.state.xlog("mallory").entries()
        beneficiaries = [p.beneficiary for p in log]
        print(f"  replica {replica.node_id}: mallory's xlog -> {beneficiaries}")
        settled_to_bob += beneficiaries.count("bob")
        settled_to_carol += beneficiaries.count("carol")

    # The ACK-phase conflict check means at most ONE of the conflicting
    # payments can gather a commit certificate: either everyone settled
    # the payment to Bob, or everyone settled the payment to Carol —
    # never a mix, and never both.
    assert settled_to_bob == 0 or settled_to_carol == 0, "double spend!"
    for replica in system.replicas:
        assert len(replica.state.xlog("mallory")) <= 1

    total_spent = max(
        replica.state.xlog("mallory").last_seq for replica in system.replicas
    )
    print(f"\nConflicting payments settled system-wide: {total_spent} (<= 1)")
    print("OK — the same sequence number can never move money twice.")


if __name__ == "__main__":
    main()
