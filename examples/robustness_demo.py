#!/usr/bin/env python3
"""Robustness demo: leader crash vs representative crash (§VI-D).

Reproduces the core of Fig. 5 at demo scale: ten closed-loop clients
drive (a) the consensus-based baseline and (b) Astro I; thirty seconds in
(scaled down here), a replica crashes — the *leader* for consensus, a
random representative for Astro.  Consensus throughput collapses to zero
until the view change completes; Astro sheds exactly one client's worth
of throughput.

Run:  python examples/robustness_demo.py
"""

from repro.bench.robustness import NUM_CLIENTS
from repro.bench.systems import build_astro1, build_bft
from repro.bench.timeline import run_timeline

SIZE = 10
WARMUP = 5.0
WINDOW = 20.0
FAULT_OFFSET = 6.0


def render(series, scale=1.0):
    """One-line ASCII sparkline of a throughput series."""
    top = max(max(series), 1.0)
    blocks = " .:-=+*#%@"
    return "".join(
        blocks[min(int(v / top * (len(blocks) - 1)), len(blocks) - 1)]
        for v in series
    )


def main() -> None:
    print(f"{SIZE} replicas, {NUM_CLIENTS} closed-loop clients, "
          f"crash at t={WARMUP + FAULT_OFFSET:.0f}s\n")

    bft = build_bft(SIZE, seed=3)
    bft_timeline = run_timeline(
        bft,
        num_clients=NUM_CLIENTS,
        warmup=WARMUP,
        window=WINDOW,
        fault=lambda s, t: s.faults.crash(s.replicas[0].node_id, at=t),
        fault_offset=FAULT_OFFSET,
    )

    astro = build_astro1(SIZE, seed=3)
    astro_timeline = run_timeline(
        astro,
        num_clients=NUM_CLIENTS,
        warmup=WARMUP,
        window=WINDOW,
        fault=lambda s, t: s.faults.crash(s.replicas[NUM_CLIENTS - 1].node_id, at=t),
        fault_offset=FAULT_OFFSET,
    )

    print("Per-second settled payments (one char per second, fault at ^):")
    marker = " " * int(FAULT_OFFSET) + "^"
    print(f"  Consensus-Leader : {render(bft_timeline.series)}")
    print(f"  Broadcast-Random : {render(astro_timeline.series)}")
    print(f"                     {marker}")

    print(f"\nConsensus: {bft_timeline.before_fault():.0f} pps before, "
          f"min {bft_timeline.min_after_fault():.0f} pps during view change, "
          f"{sum(bft_timeline.series[-3:]) / 3:.0f} pps at the end")
    print(f"Astro I:   {astro_timeline.before_fault():.0f} pps before, "
          f"{astro_timeline.after_fault():.0f} pps after "
          f"(lost ~1 client in {NUM_CLIENTS})")

    assert bft_timeline.min_after_fault() == 0.0
    assert astro_timeline.min_after_fault() > 0.0
    print("\nOK — no leader, no single point of collapse.")


if __name__ == "__main__":
    main()
