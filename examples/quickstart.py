#!/usr/bin/env python3
"""Quickstart: a four-replica Astro II deployment settling payments.

Builds the smallest fault-tolerant system the paper evaluates (N = 3f+1
with f = 1), submits a handful of payments — including one that is only
possible after an incoming credit materializes — and inspects balances
and exclusive logs on every replica.

Run:  python examples/quickstart.py
"""

from repro import Astro2System


def main() -> None:
    genesis = {"alice": 100, "bob": 50, "carol": 0}
    system = Astro2System(num_replicas=4, genesis=genesis, seed=42)

    print("Genesis:", genesis)

    # Alice pays Bob; Bob forwards most of it to Carol.  Bob's second
    # payment exceeds his genesis balance, so his representative attaches
    # the dependency certificate proving Alice's payment settled.
    system.submit("alice", "bob", 40)
    system.settle_all()
    system.submit("bob", "carol", 80)   # needs Alice's 40
    system.settle_all()

    print("\nBalances at each replica (settled state):")
    for replica in system.replicas:
        balances = {c: replica.balance_of(c) for c in sorted(genesis)}
        print(f"  replica {replica.node_id}: {balances}")

    print("\nExclusive logs at replica 0:")
    state = system.replica(0).state
    for client in sorted(genesis):
        entries = [
            f"#{p.seq}: {p.amount} -> {p.beneficiary}"
            for p in state.xlog(client)
        ]
        print(f"  {client}: {entries or '(empty)'}")

    rep_of_carol = system.representative_of("carol")
    print(
        "\nCarol's spendable balance at her representative "
        f"(settled + pending credits): {rep_of_carol.available_balance('carol')}"
    )

    total = system.total_value()
    print(f"\nConserved total value: {total} (genesis total: {sum(genesis.values())})")
    assert total == sum(genesis.values())

    counts = system.settled_counts()
    print(f"Settled payments per replica: {counts}")
    assert counts == [2, 2, 2, 2]
    print("\nOK — all replicas agree, no value created or destroyed.")


if __name__ == "__main__":
    main()
