#!/usr/bin/env python3
"""Reconfiguration demo: consensusless joins and leaves (Appendix A).

Grows a quiescent 4-replica membership to 7 one join at a time, then
retires a replica — all without consensus.  Installed views form a
sequence at every correct replica, and each joiner measures its own
join latency (what Fig. 8 plots).

Run:  python examples/reconfiguration.py
"""

from repro.crypto import Keychain, replica_owner
from repro.reconfig import ReconfigReplica, View
from repro.sim import Network, Simulator, europe_wan

START = 4
END = 7
STATE_BYTES = 500_000  # xlog snapshot a joiner must fetch


def main() -> None:
    sim = Simulator()
    network = Network(sim, latency=europe_wan(END + 1, seed=5))
    keychain = Keychain(seed=5)
    initial = View(0, range(START))
    replicas = {}
    for node_id in range(END):
        key = keychain.generate(replica_owner(node_id))
        replicas[node_id] = ReconfigReplica(
            sim, node_id, network, initial, keychain, key,
            state_bytes=STATE_BYTES,
        )

    current = initial
    print(f"Initial view #{current.number}: members {sorted(current.members)}")

    for joiner_id in range(START, END):
        joiner = replicas[joiner_id]
        joiner.view = current
        joiner.request_join()
        sim.run_until_idle()
        current = joiner.view
        print(
            f"Join of replica {joiner_id}: view #{current.number} "
            f"({current.n} members), latency {joiner.join_latency * 1e3:.0f} ms"
        )

    # A member retires.
    leaver = replicas[0]
    leaver.request_leave()
    sim.run_until_idle()
    survivor = replicas[1]
    current = survivor.view
    print(
        f"Leave of replica 0: view #{current.number} "
        f"({current.n} members: {sorted(current.members)})"
    )

    # Installed views form a sequence at every active replica.
    for node_id, replica in replicas.items():
        if not replica.active:
            continue
        numbers = [view.number for view in replica.installed_history]
        assert numbers == sorted(numbers), f"non-monotonic views at {node_id}"
        assert replica.view == current, f"replica {node_id} lags behind"
    assert not leaver.active
    print("\nOK — membership changed four times, consensus used zero times.")


if __name__ == "__main__":
    main()
