#!/usr/bin/env python3
"""Sharded Smallbank: cross-shard payments without 2PC (§V, §VI-C2).

Runs the Smallbank transaction family over a 2-shard Astro II deployment
(scaled-down shards for a quick demo).  Cross-shard payments settle
unilaterally in the spender's shard; CREDIT messages carry the value to
the beneficiary's representative in the other shard — one communication
step, no cross-shard coordination on the critical path.

Run:  python examples/sharded_smallbank.py
"""

from repro import Astro2System
from repro.sim.metrics import LatencyRecorder, ThroughputMeter
from repro.workloads import (
    OpenLoopDriver,
    SmallbankWorkload,
    shard_assignment,
    smallbank_genesis,
)

NUM_OWNERS = 16
SHARDS = 2
REPLICAS_PER_SHARD = 4
RATE = 2_000.0
DURATION = 3.0


def main() -> None:
    genesis = smallbank_genesis(NUM_OWNERS, num_shards=SHARDS, balance=10**6)
    system = Astro2System(
        num_replicas=REPLICAS_PER_SHARD,
        num_shards=SHARDS,
        genesis=genesis,
        seed=11,
        shard_assignment=shard_assignment(NUM_OWNERS, SHARDS),
    )
    workload = SmallbankWorkload(NUM_OWNERS, num_shards=SHARDS, seed=11)
    meter = ThroughputMeter(bucket_width=0.5)
    recorder = LatencyRecorder(1.0, DURATION)
    OpenLoopDriver(
        system, workload, rate=RATE, duration=DURATION,
        meter=meter, recorder=recorder,
    )
    system.run(DURATION + 1.0)
    system.settle_all()

    throughput = meter.rate(1.0, DURATION)
    latency = recorder.summary()
    print(f"Shards: {SHARDS} x {REPLICAS_PER_SHARD} replicas")
    print(f"Offered load: {RATE:.0f} pps for {DURATION:.0f}s")
    print(f"Settled throughput (steady window): {throughput:.0f} pps")
    print(
        f"Confirmation latency: mean {latency.mean * 1e3:.0f} ms, "
        f"p95 {latency.p95 * 1e3:.0f} ms"
    )
    print(
        f"Cross-shard fraction: {workload.observed_cross_fraction:.1%} "
        f"(paper: 12.5% of all transactions)"
    )
    print(f"Balance queries served locally: {workload.balance_queries}")

    total = system.total_value()
    expected = sum(genesis.values())
    print(f"Conserved total value: {total} (genesis {expected})")
    assert total == expected

    # Every replica of a shard converged to the same state.
    for shard in range(SHARDS):
        members = system.directory.members(shard)
        snapshots = {
            system.replica_by_node(node).state.snapshot() for node in members
        }
        assert len(snapshots) == 1, f"shard {shard} replicas diverged"
    print("OK — shards consistent, value conserved, no 2PC anywhere.")


if __name__ == "__main__":
    main()
